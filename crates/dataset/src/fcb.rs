//! FCB — the **F**RaC **c**olumn **b**inary on-disk dataset format.
//!
//! TSV datasets are parsed whole-file into RAM; FCB is the out-of-core
//! answer: a little-endian, column-major binary layout whose column extents
//! are exactly the workspace's in-memory representation (`f64` values with
//! NaN-as-missing, `u32` codes with [`MISSING_CODE`]-as-missing), so a
//! loaded file exposes every column as a zero-copy slice out of one shared
//! [`MmapFile`] — no per-cell parsing, no materialization, and the same
//! bits (hence the same NS scores, bit for bit) as the TSV path. The
//! normative byte-level specification lives in `FORMATS.md`; this module is
//! its reference implementation.
//!
//! Layout, in file order (every offset 8-byte aligned, all integers LE):
//!
//! ```text
//! header    64 bytes: magic "FRACFCB\0", version, n_rows, n_features,
//!                     schema FNV-1a 64, schema_len, dir_off, header CRC-32
//! schema    the TSV header line (`name:kind\t…`), zero-padded to 8 — this
//!           doubles as the embedded string table (feature names + kinds)
//! directory n_features × 48-byte entries: kind, arity, values extent
//!           (offset/len/CRC-32), missing-bitmap extent (offset/len/CRC-32)
//! extents   per column, in order: values then missing bitmap, each padded
//! trailer   16 bytes: magic "FCBCRC\0\0" + whole-file CRC-32
//! ```
//!
//! Writing is *chunked*: [`FcbWriter`] buffers at most `chunk_rows` rows
//! (the memory budget) and scatters each full chunk to the per-column
//! extents with positioned writes, so packing a dataset never holds more
//! than one chunk in memory — datasets larger than RAM stream through.
//! Files are published atomically (tmp + fsync + rename + parent-dir
//! fsync, the [`crate::crc`]-guarded discipline model persistence uses), so
//! a reader never observes a half-written file and a mapped file is never
//! modified in place.
//!
//! Loading verifies the header CRC, the whole-file CRC, every per-extent
//! CRC, the directory geometry against the recomputed layout, categorical
//! code ranges, and bitmap/sentinel agreement — a torn, truncated,
//! bit-flipped, or foreign file is rejected with a path-naming
//! [`FcbError`], never a panic.

use crate::crc::{crc32, fnv64, Crc32};
use crate::dataset::{ColStore, Column, Dataset, Value, MISSING_CODE};
use crate::io as tsv;
use crate::mmap::MmapFile;
use crate::schema::{FeatureKind, Schema};
use std::fs::File;
use std::io::{self, BufRead as _, BufReader, Read as _};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// File magic, first 8 bytes of every FCB file.
pub const MAGIC: [u8; 8] = *b"FRACFCB\0";
/// Current (and only) format version.
pub const VERSION: u32 = 1;
/// Trailer magic, first 8 bytes of the 16-byte trailer.
pub const TRAILER_MAGIC: [u8; 8] = *b"FCBCRC\0\0";

const HEADER_LEN: u64 = 64;
const DIR_ENTRY_LEN: u64 = 48;
const TRAILER_LEN: u64 = 16;
const KIND_REAL: u32 = 0;
const KIND_CAT: u32 = 1;

/// Round `n` up to the next multiple of 8.
fn pad8(n: u64) -> u64 {
    n.div_ceil(8) * 8
}

/// What went wrong reading or writing an FCB file. Every variant names the
/// file, so errors surfaced by the CLI point at the artifact at fault.
#[derive(Debug)]
pub enum FcbError {
    /// Underlying filesystem failure.
    Io {
        /// The file being read or written.
        path: PathBuf,
        /// The originating I/O error.
        source: io::Error,
    },
    /// The file is not an FCB file (wrong magic) or an FCB version this
    /// build does not read.
    Foreign {
        /// The offending file.
        path: PathBuf,
        /// What disqualified it.
        detail: String,
    },
    /// The file ends too early: shorter than the fixed header, missing its
    /// trailer, or an extent runs past end-of-file — the signature of a
    /// torn or truncated write.
    Truncated {
        /// The offending file.
        path: PathBuf,
        /// Which boundary was violated.
        detail: String,
    },
    /// The file is structurally complete but fails validation: a CRC
    /// mismatch, inconsistent geometry, an out-of-range code, or a
    /// bitmap/sentinel disagreement.
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// Which check failed.
        detail: String,
    },
    /// Input handed to the encoder was rejected (row width/kind mismatch,
    /// row-count mismatch, or a TSV parse error while packing).
    Encode {
        /// The file being produced.
        path: PathBuf,
        /// What was wrong with the input.
        detail: String,
    },
}

impl std::fmt::Display for FcbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FcbError::Io { path, source } => {
                write!(f, "{}: I/O error: {source}", path.display())
            }
            FcbError::Foreign { path, detail } => {
                write!(f, "{}: not a readable FCB file: {detail}", path.display())
            }
            FcbError::Truncated { path, detail } => {
                write!(f, "{}: truncated FCB file: {detail}", path.display())
            }
            FcbError::Corrupt { path, detail } => {
                write!(f, "{}: corrupt FCB file: {detail}", path.display())
            }
            FcbError::Encode { path, detail } => {
                write!(f, "{}: cannot encode: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for FcbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FcbError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// True when `path` has the `.fcb` extension (case-insensitive) — the
/// dispatch rule the CLI uses everywhere a `--data`/`--train` style flag
/// accepts either format.
pub fn is_fcb_path(path: &Path) -> bool {
    path.extension().is_some_and(|e| e.eq_ignore_ascii_case("fcb"))
}

/// Per-column byte geometry, derived (never stored redundantly) from the
/// schema and row count.
#[derive(Debug, Clone)]
struct ColLayout {
    values_off: u64,
    values_len: u64,
    missing_off: u64,
    missing_len: u64,
}

/// Whole-file byte geometry. The directory must match this exactly — FCB
/// has one canonical layout per (schema, n_rows), which is what makes
/// byte-identical re-packs and cheap validation possible.
#[derive(Debug, Clone)]
struct Layout {
    schema_text: String,
    dir_off: u64,
    cols: Vec<ColLayout>,
    trailer_off: u64,
    file_len: u64,
}

fn elem_size(kind: FeatureKind) -> u64 {
    match kind {
        FeatureKind::Real => 8,
        FeatureKind::Categorical { .. } => 4,
    }
}

fn layout_for(schema: &Schema, n_rows: u64) -> Result<Layout, String> {
    if schema.is_empty() {
        return Err("schema has no features".into());
    }
    let schema_text: String = schema
        .iter()
        .map(|f| format!("{}:{}", f.name, f.kind))
        .collect::<Vec<_>>()
        .join("\t");
    if schema_text.contains('\n') || schema_text.contains('\r') {
        return Err("feature names must not contain newlines".into());
    }
    let dir_off = HEADER_LEN + pad8(schema_text.len() as u64);
    let missing_len = n_rows.div_ceil(8);
    let mut off = dir_off
        .checked_add(DIR_ENTRY_LEN.checked_mul(schema.len() as u64).ok_or("too many columns")?)
        .ok_or("layout overflows u64")?;
    let mut cols = Vec::with_capacity(schema.len());
    for f in schema.iter() {
        let values_len = n_rows.checked_mul(elem_size(f.kind)).ok_or("extent overflows u64")?;
        let values_off = off;
        off = off.checked_add(pad8(values_len)).ok_or("layout overflows u64")?;
        let missing_off = off;
        off = off.checked_add(pad8(missing_len)).ok_or("layout overflows u64")?;
        cols.push(ColLayout { values_off, values_len, missing_off, missing_len });
    }
    let trailer_off = off;
    let file_len = off.checked_add(TRAILER_LEN).ok_or("layout overflows u64")?;
    Ok(Layout { schema_text, dir_off, cols, trailer_off, file_len })
}

fn read_u32(bytes: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes"))
}

fn read_u64(bytes: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8 bytes"))
}

/// Bit `row` of a missing bitmap (LSB-first within each byte).
fn bitmap_bit(bitmap: &[u8], row: usize) -> bool {
    bitmap[row / 8] >> (row % 8) & 1 == 1
}

// ---------------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------------

/// One parsed directory entry (geometry already validated against the
/// canonical [`Layout`]).
#[derive(Debug, Clone)]
struct DirEntry {
    values_off: u64,
    values_len: u64,
    missing_off: u64,
    missing_len: u64,
    values_crc: u32,
    missing_crc: u32,
}

/// A validated, memory-mapped FCB file.
///
/// [`FcbFile::open`] performs the *full* integrity pass (header CRC,
/// whole-file CRC, per-extent CRCs, geometry, code ranges, bitmap
/// agreement); afterwards [`FcbFile::dataset`] hands out a [`Dataset`]
/// whose columns are zero-copy views into the mapping — the file's bytes
/// are the dataset, nothing is re-materialized.
#[derive(Debug)]
pub struct FcbFile {
    map: Arc<MmapFile>,
    path: PathBuf,
    schema: Schema,
    n_rows: usize,
    file_crc: u32,
    entries: Vec<DirEntry>,
}

impl FcbFile {
    /// Map and fully validate the FCB file at `path`.
    ///
    /// Rejects (never panics on) foreign magic, unsupported versions,
    /// truncated files, CRC mismatches at any level, geometry that
    /// disagrees with the canonical layout, out-of-range categorical
    /// codes, and missing-bitmap/sentinel disagreement. Every error names
    /// `path`.
    pub fn open(path: impl AsRef<Path>) -> Result<FcbFile, FcbError> {
        let path = path.as_ref().to_path_buf();
        let io_err = |source| FcbError::Io { path: path.clone(), source };
        let foreign = |detail: String| FcbError::Foreign { path: path.clone(), detail };
        let torn = |detail: String| FcbError::Truncated { path: path.clone(), detail };
        let corrupt = |detail: String| FcbError::Corrupt { path: path.clone(), detail };

        let map = Arc::new(MmapFile::open(&path).map_err(io_err)?);
        let bytes = map.as_bytes();
        if bytes.len() < 8 {
            return Err(torn(format!("{} bytes is shorter than the 8-byte magic", bytes.len())));
        }
        if bytes[..8] != MAGIC {
            return Err(foreign("wrong magic (expected \"FRACFCB\\0\")".into()));
        }
        if (bytes.len() as u64) < HEADER_LEN + TRAILER_LEN {
            return Err(torn(format!(
                "{} bytes cannot hold the {HEADER_LEN}-byte header and {TRAILER_LEN}-byte trailer",
                bytes.len()
            )));
        }

        // Fixed header.
        let version = read_u32(bytes, 8);
        if version != VERSION {
            return Err(foreign(format!("unsupported FCB version {version} (this build reads {VERSION})")));
        }
        if read_u32(bytes, 12) != 0 {
            return Err(corrupt("nonzero reserved flags field".into()));
        }
        let stored_header_crc = read_u32(bytes, 56);
        let actual_header_crc = crc32(&bytes[..56]);
        if stored_header_crc != actual_header_crc {
            return Err(corrupt(format!(
                "header CRC mismatch (stored {stored_header_crc:08x}, computed {actual_header_crc:08x})"
            )));
        }
        if read_u32(bytes, 60) != 0 {
            return Err(corrupt("nonzero reserved header tail".into()));
        }
        let n_rows_u64 = read_u64(bytes, 16);
        let n_features_u64 = read_u64(bytes, 24);
        let schema_fnv = read_u64(bytes, 32);
        let schema_len = read_u64(bytes, 40);
        let dir_off = read_u64(bytes, 48);
        let n_rows: usize = n_rows_u64
            .try_into()
            .map_err(|_| corrupt(format!("n_rows {n_rows_u64} exceeds this platform")))?;
        let n_features: usize = n_features_u64
            .try_into()
            .map_err(|_| corrupt(format!("n_features {n_features_u64} exceeds this platform")))?;

        // Schema block (the embedded string table).
        let schema_end = HEADER_LEN
            .checked_add(schema_len)
            .filter(|&e| e <= bytes.len() as u64)
            .ok_or_else(|| torn(format!("schema block of {schema_len} bytes runs past end of file")))?;
        let schema_bytes = &bytes[HEADER_LEN as usize..schema_end as usize];
        if fnv64(schema_bytes) != schema_fnv {
            return Err(corrupt("schema fingerprint mismatch".into()));
        }
        let schema_text = std::str::from_utf8(schema_bytes)
            .map_err(|_| corrupt("schema block is not UTF-8".into()))?;
        let schema = tsv::schema_from_header(schema_text)
            .map_err(|e| corrupt(format!("unreadable schema block: {e}")))?;
        if schema.len() != n_features {
            return Err(corrupt(format!(
                "header says {n_features} features but the schema block has {}",
                schema.len()
            )));
        }

        // Canonical geometry; the file must match it exactly.
        let layout = layout_for(&schema, n_rows_u64).map_err(corrupt)?;
        if dir_off != layout.dir_off {
            return Err(corrupt(format!(
                "directory offset {dir_off} disagrees with the canonical layout ({})",
                layout.dir_off
            )));
        }
        if (bytes.len() as u64) < layout.file_len {
            return Err(torn(format!(
                "file is {} bytes but the layout needs {} — truncated",
                bytes.len(),
                layout.file_len
            )));
        }
        if (bytes.len() as u64) > layout.file_len {
            return Err(corrupt(format!(
                "file is {} bytes but the layout ends at {} — trailing bytes",
                bytes.len(),
                layout.file_len
            )));
        }

        // Trailer: presence then the whole-file CRC.
        let trailer_off = layout.trailer_off as usize;
        if bytes[trailer_off..trailer_off + 8] != TRAILER_MAGIC {
            return Err(torn("trailer magic missing — torn or truncated write".into()));
        }
        let stored_file_crc = read_u32(bytes, trailer_off + 8);
        if read_u32(bytes, trailer_off + 12) != 0 {
            return Err(corrupt("nonzero reserved trailer field".into()));
        }
        let actual_file_crc = crc32(&bytes[..trailer_off]);
        if stored_file_crc != actual_file_crc {
            return Err(corrupt(format!(
                "whole-file CRC mismatch (stored {stored_file_crc:08x}, computed {actual_file_crc:08x})"
            )));
        }

        // Directory: kinds against the schema, geometry against the layout,
        // then each extent's CRC and semantic invariants.
        let mut entries = Vec::with_capacity(n_features);
        for (j, f) in schema.iter().enumerate() {
            let base = (dir_off + DIR_ENTRY_LEN * j as u64) as usize;
            let (kind_code, arity) = match f.kind {
                FeatureKind::Real => (KIND_REAL, 0),
                FeatureKind::Categorical { arity } => (KIND_CAT, arity),
            };
            if read_u32(bytes, base) != kind_code || read_u32(bytes, base + 4) != arity {
                return Err(corrupt(format!(
                    "column {j} (`{}`): directory kind/arity disagrees with the schema block",
                    f.name
                )));
            }
            let entry = DirEntry {
                values_off: read_u64(bytes, base + 8),
                values_len: read_u64(bytes, base + 16),
                missing_off: read_u64(bytes, base + 24),
                missing_len: read_u64(bytes, base + 32),
                values_crc: read_u32(bytes, base + 40),
                missing_crc: read_u32(bytes, base + 44),
            };
            let expect = &layout.cols[j];
            if entry.values_off != expect.values_off
                || entry.values_len != expect.values_len
                || entry.missing_off != expect.missing_off
                || entry.missing_len != expect.missing_len
            {
                return Err(corrupt(format!(
                    "column {j} (`{}`): extent geometry disagrees with the canonical layout",
                    f.name
                )));
            }
            let values =
                &bytes[entry.values_off as usize..(entry.values_off + entry.values_len) as usize];
            let stored = read_u32(bytes, base + 40);
            let actual = crc32(values);
            if stored != actual {
                return Err(corrupt(format!(
                    "column {j} (`{}`): values extent CRC mismatch (stored {stored:08x}, computed {actual:08x})",
                    f.name
                )));
            }
            let bitmap =
                &bytes[entry.missing_off as usize..(entry.missing_off + entry.missing_len) as usize];
            let stored = read_u32(bytes, base + 44);
            let actual = crc32(bitmap);
            if stored != actual {
                return Err(corrupt(format!(
                    "column {j} (`{}`): missing-bitmap CRC mismatch (stored {stored:08x}, computed {actual:08x})",
                    f.name
                )));
            }
            // Padding bits past the last row must be zero.
            for r in n_rows..(entry.missing_len as usize) * 8 {
                if bitmap_bit(bitmap, r) {
                    return Err(corrupt(format!(
                        "column {j} (`{}`): missing bitmap has bits set past the last row",
                        f.name
                    )));
                }
            }
            // Semantic pass: sentinel/bitmap agreement and code ranges.
            match f.kind {
                FeatureKind::Real => {
                    let v = map
                        .slice_f64(entry.values_off as usize, n_rows)
                        .expect("layout-checked extent is in bounds and aligned");
                    for (r, &x) in v.iter().enumerate() {
                        if x.is_nan() != bitmap_bit(bitmap, r) {
                            return Err(corrupt(format!(
                                "column {j} (`{}`): row {r} missing bitmap disagrees with NaN sentinel",
                                f.name
                            )));
                        }
                    }
                }
                FeatureKind::Categorical { arity } => {
                    let codes = map
                        .slice_u32(entry.values_off as usize, n_rows)
                        .expect("layout-checked extent is in bounds and aligned");
                    for (r, &c) in codes.iter().enumerate() {
                        if c != MISSING_CODE && c >= arity {
                            return Err(corrupt(format!(
                                "column {j} (`{}`): row {r} code {c} out of range for arity {arity}",
                                f.name
                            )));
                        }
                        if (c == MISSING_CODE) != bitmap_bit(bitmap, r) {
                            return Err(corrupt(format!(
                                "column {j} (`{}`): row {r} missing bitmap disagrees with code sentinel",
                                f.name
                            )));
                        }
                    }
                }
            }
            entries.push(entry);
        }

        Ok(FcbFile { map, path, schema, n_rows, file_crc: stored_file_crc, entries })
    }

    /// The schema stored in the file.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of features (columns).
    pub fn n_features(&self) -> usize {
        self.schema.len()
    }

    /// The path this file was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The dataset, with every column a zero-copy view into the mapping.
    ///
    /// Cheap (clones the schema and `Arc`s the mapping, copies no cell
    /// data); the returned [`Dataset`] feeds the pool/design machinery
    /// exactly like a TSV-parsed one and produces bit-identical results.
    pub fn dataset(&self) -> Dataset {
        let columns = self
            .schema
            .iter()
            .zip(&self.entries)
            .map(|(f, e)| {
                let off = e.values_off as usize;
                match f.kind {
                    FeatureKind::Real => Column::Real(
                        ColStore::mapped(Arc::clone(&self.map), off, self.n_rows)
                            .expect("extent validated at open"),
                    ),
                    FeatureKind::Categorical { arity } => Column::Categorical {
                        arity,
                        codes: ColStore::mapped(Arc::clone(&self.map), off, self.n_rows)
                            .expect("extent validated at open"),
                    },
                }
            })
            .collect();
        Dataset::new(self.schema.clone(), columns)
    }

    /// A bounded-memory owned copy of the row range `start..end` — the
    /// row-range iteration primitive for consumers that want to stream a
    /// file larger than RAM through owned storage (clamped to the file's
    /// row count).
    pub fn read_rows(&self, start: usize, end: usize) -> Dataset {
        let end = end.min(self.n_rows);
        let start = start.min(end);
        let rows: Vec<usize> = (start..end).collect();
        self.dataset().select_rows(&rows)
    }

    /// Header/CRC summary for `frac info`.
    pub fn info(&self) -> FcbInfo {
        let columns = self
            .schema
            .iter()
            .zip(&self.entries)
            .map(|(f, e)| {
                let bitmap = &self.map.as_bytes()
                    [e.missing_off as usize..(e.missing_off + e.missing_len) as usize];
                FcbColumnInfo {
                    name: f.name.clone(),
                    kind: f.kind,
                    n_missing: bitmap.iter().map(|b| b.count_ones() as usize).sum(),
                    values_len: e.values_len,
                    values_crc: e.values_crc,
                    missing_crc: e.missing_crc,
                }
            })
            .collect();
        FcbInfo {
            version: VERSION,
            n_rows: self.n_rows,
            n_features: self.schema.len(),
            schema_fnv: fnv64(self.layout_schema_text().as_bytes()),
            file_len: self.map.len() as u64,
            file_crc: self.file_crc,
            columns,
        }
    }

    fn layout_schema_text(&self) -> String {
        self.schema
            .iter()
            .map(|f| format!("{}:{}", f.name, f.kind))
            .collect::<Vec<_>>()
            .join("\t")
    }
}

/// Summary of a validated FCB file, as printed by `frac info`.
#[derive(Debug, Clone)]
pub struct FcbInfo {
    /// Format version.
    pub version: u32,
    /// Number of rows.
    pub n_rows: usize,
    /// Number of feature columns.
    pub n_features: usize,
    /// FNV-1a 64 of the schema block.
    pub schema_fnv: u64,
    /// Total file length in bytes.
    pub file_len: u64,
    /// Whole-file CRC-32 from the trailer (already verified).
    pub file_crc: u32,
    /// Per-column summaries, in schema order.
    pub columns: Vec<FcbColumnInfo>,
}

/// Per-column summary inside an [`FcbInfo`].
#[derive(Debug, Clone)]
pub struct FcbColumnInfo {
    /// Feature name.
    pub name: String,
    /// Feature kind.
    pub kind: FeatureKind,
    /// Missing rows (popcount of the missing bitmap).
    pub n_missing: usize,
    /// Bytes in the values extent.
    pub values_len: u64,
    /// CRC-32 of the values extent (already verified at open).
    pub values_crc: u32,
    /// CRC-32 of the missing bitmap (already verified at open).
    pub missing_crc: u32,
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

/// Statistics from one completed pack.
#[derive(Debug, Clone)]
pub struct FcbStats {
    /// Rows written.
    pub rows: usize,
    /// Final file size in bytes.
    pub file_bytes: u64,
    /// Rows buffered per flush — the encode memory budget knob.
    pub chunk_rows: usize,
    /// High-water mark of bytes buffered in chunk buffers at any point;
    /// bounded by `chunk_rows`, never by the dataset size.
    pub peak_buffer_bytes: usize,
}

enum ChunkBuf {
    Real(Vec<f64>),
    Cat(Vec<u32>),
}

/// Chunked, bounded-memory FCB encoder.
///
/// The row count must be known up front (the column-major layout is a
/// function of it); rows then stream in via [`FcbWriter::push_row`] and at
/// most `chunk_rows` of them are resident at a time. [`FcbWriter::finish`]
/// seals the file — per-extent CRCs into the directory, a streaming
/// whole-file CRC into the trailer — and publishes it atomically
/// (`<path>.tmp` + fsync + rename + parent-dir fsync). A crash at any
/// point leaves either the old file or a `.tmp` orphan, never a torn
/// `.fcb`.
pub struct FcbWriter {
    file: File,
    tmp_path: PathBuf,
    final_path: PathBuf,
    schema: Schema,
    layout: Layout,
    n_rows: usize,
    chunk_rows: usize,
    rows_written: usize,
    buffered: usize,
    bufs: Vec<ChunkBuf>,
    missing: Vec<Vec<u8>>,
    values_crc: Vec<Crc32>,
    missing_crc: Vec<Crc32>,
    byte_buf: Vec<u8>,
    peak_buffer_bytes: usize,
}

impl FcbWriter {
    /// Start writing `n_rows` rows of `schema` to `path`, buffering at most
    /// `chunk_rows` rows (rounded up to a multiple of 8; minimum 8) before
    /// each scatter to disk.
    pub fn create(
        path: impl AsRef<Path>,
        schema: &Schema,
        n_rows: usize,
        chunk_rows: usize,
    ) -> Result<FcbWriter, FcbError> {
        let final_path = path.as_ref().to_path_buf();
        let encode = |detail: String| FcbError::Encode { path: final_path.clone(), detail };
        let layout = layout_for(schema, n_rows as u64).map_err(encode)?;
        let chunk_rows = pad8(chunk_rows.max(1) as u64) as usize;
        let tmp_path = final_path.with_file_name(format!(
            "{}.tmp",
            final_path.file_name().map(|n| n.to_string_lossy()).unwrap_or_default()
        ));
        let io_err = |source| FcbError::Io { path: final_path.clone(), source };
        let file = File::create(&tmp_path).map_err(io_err)?;
        file.set_len(layout.file_len).map_err(io_err)?;

        // Header + schema block are known up front; the directory and
        // trailer wait for the CRCs at finish.
        let mut header = Vec::with_capacity(HEADER_LEN as usize);
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&0u32.to_le_bytes());
        header.extend_from_slice(&(n_rows as u64).to_le_bytes());
        header.extend_from_slice(&(schema.len() as u64).to_le_bytes());
        header.extend_from_slice(&fnv64(layout.schema_text.as_bytes()).to_le_bytes());
        header.extend_from_slice(&(layout.schema_text.len() as u64).to_le_bytes());
        header.extend_from_slice(&layout.dir_off.to_le_bytes());
        let crc = crc32(&header);
        header.extend_from_slice(&crc.to_le_bytes());
        header.extend_from_slice(&0u32.to_le_bytes());
        debug_assert_eq!(header.len() as u64, HEADER_LEN);
        write_all_at(&file, 0, &header).map_err(io_err)?;
        write_all_at(&file, HEADER_LEN, layout.schema_text.as_bytes()).map_err(io_err)?;

        let bufs = schema
            .iter()
            .map(|f| match f.kind {
                FeatureKind::Real => ChunkBuf::Real(Vec::with_capacity(chunk_rows)),
                FeatureKind::Categorical { .. } => ChunkBuf::Cat(Vec::with_capacity(chunk_rows)),
            })
            .collect();
        let n = schema.len();
        Ok(FcbWriter {
            file,
            tmp_path,
            final_path,
            schema: schema.clone(),
            layout,
            n_rows,
            chunk_rows,
            rows_written: 0,
            buffered: 0,
            bufs,
            missing: vec![vec![0u8; chunk_rows / 8]; n],
            values_crc: vec![Crc32::new(); n],
            missing_crc: vec![Crc32::new(); n],
            byte_buf: Vec::new(),
            peak_buffer_bytes: 0,
        })
    }

    fn encode_err(&self, detail: String) -> FcbError {
        FcbError::Encode { path: self.final_path.clone(), detail }
    }

    fn io_err(&self, source: io::Error) -> FcbError {
        FcbError::Io { path: self.final_path.clone(), source }
    }

    /// Append one row. Value bit patterns are preserved exactly (a
    /// `Value::Real` NaN keeps its payload; `Value::Missing` stores the
    /// canonical NaN / [`MISSING_CODE`]), so packing reproduces the source
    /// dataset bit for bit.
    pub fn push_row(&mut self, values: &[Value]) -> Result<(), FcbError> {
        if values.len() != self.schema.len() {
            return Err(self.encode_err(format!(
                "row {} has {} cells, schema has {}",
                self.rows_written + self.buffered + 1,
                values.len(),
                self.schema.len()
            )));
        }
        if self.rows_written + self.buffered >= self.n_rows {
            return Err(self.encode_err(format!("more rows pushed than the declared {}", self.n_rows)));
        }
        let r = self.buffered;
        for (j, (&v, buf)) in values.iter().zip(&mut self.bufs).enumerate() {
            let missing = match (buf, v) {
                (ChunkBuf::Real(b), Value::Real(x)) => {
                    b.push(x);
                    x.is_nan()
                }
                (ChunkBuf::Real(b), Value::Missing) => {
                    b.push(f64::NAN);
                    true
                }
                (ChunkBuf::Cat(b), Value::Categorical(c)) => {
                    let arity = match self.schema.kind(j) {
                        FeatureKind::Categorical { arity } => arity,
                        FeatureKind::Real => unreachable!("buffer kind matches schema"),
                    };
                    if c >= arity {
                        return Err(FcbError::Encode {
                            path: self.final_path.clone(),
                            detail: format!("column {j}: code {c} out of range for arity {arity}"),
                        });
                    }
                    b.push(c);
                    false
                }
                (ChunkBuf::Cat(b), Value::Missing) => {
                    b.push(MISSING_CODE);
                    true
                }
                (_, v) => {
                    return Err(FcbError::Encode {
                        path: self.final_path.clone(),
                        detail: format!("column {j}: value {v:?} does not match the schema kind"),
                    })
                }
            };
            if missing {
                self.missing[j][r / 8] |= 1 << (r % 8);
            }
        }
        self.buffered += 1;
        if self.buffered == self.chunk_rows {
            self.flush_chunk()?;
        }
        Ok(())
    }

    /// Append rows `start..end` of `data` (clamped), column-at-a-time —
    /// the fast path for packing an in-memory dataset. Bit patterns are
    /// preserved exactly, so the packed file's content fingerprint equals
    /// the source's.
    pub fn append_dataset_rows(
        &mut self,
        data: &Dataset,
        start: usize,
        end: usize,
    ) -> Result<(), FcbError> {
        if data.schema() != &self.schema {
            return Err(self.encode_err("dataset schema differs from the writer's".into()));
        }
        let end = end.min(data.n_rows());
        let mut row = start.min(end);
        while row < end {
            // Fill at most the rest of the current chunk from each column.
            let take = (self.chunk_rows - self.buffered).min(end - row);
            if self.rows_written + self.buffered + take > self.n_rows {
                return Err(self.encode_err(format!("more rows pushed than the declared {}", self.n_rows)));
            }
            let base = self.buffered;
            for (j, buf) in self.bufs.iter_mut().enumerate() {
                match (data.column(j), buf) {
                    (Column::Real(v), ChunkBuf::Real(b)) => {
                        for (i, &x) in v[row..row + take].iter().enumerate() {
                            b.push(x);
                            if x.is_nan() {
                                self.missing[j][(base + i) / 8] |= 1 << ((base + i) % 8);
                            }
                        }
                    }
                    (Column::Categorical { codes, .. }, ChunkBuf::Cat(b)) => {
                        for (i, &c) in codes[row..row + take].iter().enumerate() {
                            b.push(c);
                            if c == MISSING_CODE {
                                self.missing[j][(base + i) / 8] |= 1 << ((base + i) % 8);
                            }
                        }
                    }
                    _ => unreachable!("schema equality was checked"),
                }
            }
            self.buffered += take;
            row += take;
            if self.buffered == self.chunk_rows {
                self.flush_chunk()?;
            }
        }
        Ok(())
    }

    /// Scatter the buffered chunk to every column's extents.
    fn flush_chunk(&mut self) -> Result<(), FcbError> {
        let rows = self.buffered;
        if rows == 0 {
            return Ok(());
        }
        let base = self.rows_written as u64;
        debug_assert_eq!(base % 8, 0, "chunk boundaries stay byte-aligned in the bitmap");
        let mut resident = 0usize;
        for j in 0..self.bufs.len() {
            let lay = self.layout.cols[j].clone();
            self.byte_buf.clear();
            match &self.bufs[j] {
                ChunkBuf::Real(b) => {
                    for &x in b {
                        self.byte_buf.extend_from_slice(&x.to_le_bytes());
                    }
                    resident += b.capacity() * 8;
                }
                ChunkBuf::Cat(b) => {
                    for &c in b {
                        self.byte_buf.extend_from_slice(&c.to_le_bytes());
                    }
                    resident += b.capacity() * 4;
                }
            }
            let elem = self.byte_buf.len() as u64 / rows as u64;
            write_all_at(&self.file, lay.values_off + base * elem, &self.byte_buf)
                .map_err(|e| self.io_err(e))?;
            self.values_crc[j].write(&self.byte_buf);
            let bits = &self.missing[j][..rows.div_ceil(8)];
            write_all_at(&self.file, lay.missing_off + base / 8, bits)
                .map_err(|e| self.io_err(e))?;
            self.missing_crc[j].write(bits);
            resident += self.missing[j].len();
            match &mut self.bufs[j] {
                ChunkBuf::Real(b) => b.clear(),
                ChunkBuf::Cat(b) => b.clear(),
            }
            self.missing[j].fill(0);
        }
        self.peak_buffer_bytes = self.peak_buffer_bytes.max(resident + self.byte_buf.capacity());
        self.rows_written += rows;
        self.buffered = 0;
        Ok(())
    }

    /// Seal and atomically publish the file. Fails if fewer rows were
    /// pushed than declared at [`FcbWriter::create`].
    pub fn finish(mut self) -> Result<FcbStats, FcbError> {
        self.flush_chunk()?;
        if self.rows_written != self.n_rows {
            return Err(self.encode_err(format!(
                "{} rows were written but {} were declared",
                self.rows_written, self.n_rows
            )));
        }

        // Directory, with the per-extent CRCs accumulated during flushes.
        let mut dir = Vec::with_capacity(DIR_ENTRY_LEN as usize * self.schema.len());
        for (j, f) in self.schema.iter().enumerate() {
            let (kind_code, arity) = match f.kind {
                FeatureKind::Real => (KIND_REAL, 0),
                FeatureKind::Categorical { arity } => (KIND_CAT, arity),
            };
            let lay = &self.layout.cols[j];
            dir.extend_from_slice(&kind_code.to_le_bytes());
            dir.extend_from_slice(&arity.to_le_bytes());
            dir.extend_from_slice(&lay.values_off.to_le_bytes());
            dir.extend_from_slice(&lay.values_len.to_le_bytes());
            dir.extend_from_slice(&lay.missing_off.to_le_bytes());
            dir.extend_from_slice(&lay.missing_len.to_le_bytes());
            dir.extend_from_slice(&self.values_crc[j].finish().to_le_bytes());
            dir.extend_from_slice(&self.missing_crc[j].finish().to_le_bytes());
        }
        write_all_at(&self.file, self.layout.dir_off, &dir).map_err(|e| self.io_err(e))?;

        // Whole-file CRC: stream the written prefix back in bounded chunks
        // (the writer never holds more than one chunk of rows — the CRC
        // pass must not break that bound either).
        let mut reader =
            BufReader::new(File::open(&self.tmp_path).map_err(|e| self.io_err(e))?);
        let mut crc = Crc32::new();
        let mut remaining = self.layout.trailer_off;
        let mut buf = vec![0u8; 1 << 20];
        while remaining > 0 {
            let take = remaining.min(buf.len() as u64) as usize;
            reader.read_exact(&mut buf[..take]).map_err(|e| self.io_err(e))?;
            crc.write(&buf[..take]);
            remaining -= take as u64;
        }
        let mut trailer = Vec::with_capacity(TRAILER_LEN as usize);
        trailer.extend_from_slice(&TRAILER_MAGIC);
        trailer.extend_from_slice(&crc.finish().to_le_bytes());
        trailer.extend_from_slice(&0u32.to_le_bytes());
        write_all_at(&self.file, self.layout.trailer_off, &trailer)
            .map_err(|e| self.io_err(e))?;

        // Durable publish: fsync the data, rename into place, fsync the
        // parent directory so the rename itself is durable (the same
        // discipline as model persistence).
        self.file.sync_all().map_err(|e| self.io_err(e))?;
        std::fs::rename(&self.tmp_path, &self.final_path).map_err(|e| self.io_err(e))?;
        if let Some(parent) = self.final_path.parent() {
            let dir = if parent.as_os_str().is_empty() { Path::new(".") } else { parent };
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(FcbStats {
            rows: self.rows_written,
            file_bytes: self.layout.file_len,
            chunk_rows: self.chunk_rows,
            peak_buffer_bytes: self.peak_buffer_bytes,
        })
    }
}

fn write_all_at(file: &File, off: u64, buf: &[u8]) -> io::Result<()> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt as _;
        file.write_all_at(buf, off)
    }
    #[cfg(not(unix))]
    {
        use std::io::{Seek as _, SeekFrom, Write as _};
        let mut f = file;
        f.seek(SeekFrom::Start(off))?;
        f.write_all(buf)
    }
}

/// Pack an in-memory dataset to `path` with the default chunk size.
pub fn pack_dataset(data: &Dataset, path: impl AsRef<Path>) -> Result<FcbStats, FcbError> {
    pack_dataset_chunked(data, path, 8192)
}

/// Pack an in-memory dataset to `path`, buffering at most `chunk_rows`
/// rows. Bit patterns (NaN payloads included) are preserved, so
/// `FcbFile::open(path)?.dataset()` fingerprints identically to `data`.
pub fn pack_dataset_chunked(
    data: &Dataset,
    path: impl AsRef<Path>,
    chunk_rows: usize,
) -> Result<FcbStats, FcbError> {
    let mut w = FcbWriter::create(&path, data.schema(), data.n_rows(), chunk_rows)?;
    w.append_dataset_rows(data, 0, data.n_rows())?;
    w.finish()
}

/// Pack a TSV file to FCB without materializing it: pass 1 reads the
/// header and counts data rows, pass 2 streams rows through an
/// [`FcbWriter`] with at most `chunk_rows` rows resident. The packed cells
/// are exactly what [`crate::io::from_tsv`] would have stored, so training
/// from either file yields bit-identical models.
pub fn pack_tsv(
    tsv_path: impl AsRef<Path>,
    out_path: impl AsRef<Path>,
    chunk_rows: usize,
) -> Result<FcbStats, FcbError> {
    let tsv_path = tsv_path.as_ref();
    let out_path = out_path.as_ref();
    let io_err = |source| FcbError::Io { path: tsv_path.to_path_buf(), source };
    let parse_err =
        |e: tsv::ParseError| FcbError::Encode { path: out_path.to_path_buf(), detail: e.to_string() };

    // Pass 1: schema + row count (empty lines are skipped, as in from_tsv).
    let mut reader = BufReader::new(File::open(tsv_path).map_err(io_err)?);
    let mut header = String::new();
    if reader.read_line(&mut header).map_err(io_err)? == 0 {
        return Err(parse_err(tsv::ParseError::Header("empty input".into())));
    }
    let schema = tsv::schema_from_header(&header).map_err(parse_err)?;
    let mut n_rows = 0usize;
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line).map_err(io_err)? == 0 {
            break;
        }
        if !line.trim_end_matches(['\r', '\n']).is_empty() {
            n_rows += 1;
        }
    }

    // Pass 2: stream rows into the chunked writer.
    let mut writer = FcbWriter::create(out_path, &schema, n_rows, chunk_rows)?;
    let mut reader = BufReader::new(File::open(tsv_path).map_err(io_err)?);
    let mut line = String::new();
    reader.read_line(&mut line).map_err(io_err)?; // header, already parsed
    let mut lineno = 1usize;
    loop {
        line.clear();
        if reader.read_line(&mut line).map_err(io_err)? == 0 {
            break;
        }
        lineno += 1;
        if line.trim_end_matches(['\r', '\n']).is_empty() {
            continue;
        }
        let row = tsv::parse_record(&schema, &line, lineno).map_err(parse_err)?;
        writer.push_row(&row)?;
    }
    writer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;

    fn tmp_dir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!("frac-fcb-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn mixed() -> Dataset {
        DatasetBuilder::new()
            .real("expr", vec![1.0, 2.5, f64::NAN, -4.0, 0.0])
            .categorical("snp", 3, vec![0, 1, 2, MISSING_CODE, 1])
            .real("level", vec![f64::NAN, f64::NAN, 0.25, 1e-300, -0.0])
            .build()
    }

    #[test]
    fn roundtrip_preserves_bits_and_fingerprint() {
        let d = mixed();
        let path = tmp_dir().join("roundtrip.fcb");
        let stats = pack_dataset(&d, &path).unwrap();
        assert_eq!(stats.rows, 5);
        let f = FcbFile::open(&path).unwrap();
        assert_eq!(f.n_rows(), 5);
        assert_eq!(f.schema(), d.schema());
        let back = f.dataset();
        assert_eq!(back.fingerprint(), d.fingerprint(), "bit-exact content");
        assert!(back.column(0).as_real().is_some());
        // Columns are views into the mapping, not copies.
        match back.column(0) {
            Column::Real(v) => assert!(v.is_mapped()),
            _ => panic!("kind"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chunked_writer_matches_oneshot_bytes() {
        let d = mixed();
        let dir = tmp_dir();
        let big = dir.join("chunk-big.fcb");
        let small = dir.join("chunk-small.fcb");
        pack_dataset_chunked(&d, &big, 4096).unwrap();
        // chunk_rows = 1 rounds up to 8; with 5 rows that still exercises
        // the partial final chunk. Use a 16-row dataset to cross chunks.
        let tall = d.vstack(&d).vstack(&d.vstack(&d));
        let tall_big = dir.join("tall-big.fcb");
        let tall_small = dir.join("tall-small.fcb");
        pack_dataset_chunked(&tall, &tall_big, 4096).unwrap();
        let stats = pack_dataset_chunked(&tall, &tall_small, 1).unwrap();
        assert_eq!(stats.chunk_rows, 8, "chunk size rounds up to a byte of bitmap");
        assert_eq!(
            std::fs::read(&tall_big).unwrap(),
            std::fs::read(&tall_small).unwrap(),
            "chunking must not change a single byte"
        );
        pack_dataset_chunked(&d, &small, 1).unwrap();
        assert_eq!(std::fs::read(&big).unwrap(), std::fs::read(&small).unwrap());
        for p in [big, small, tall_big, tall_small] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn pack_tsv_matches_from_tsv() {
        let d = mixed();
        let dir = tmp_dir();
        let tsv_path = dir.join("pack.tsv");
        let fcb_path = dir.join("pack.fcb");
        crate::io::write_tsv(&d, &tsv_path).unwrap();
        pack_tsv(&tsv_path, &fcb_path, 8).unwrap();
        let from_fcb = FcbFile::open(&fcb_path).unwrap().dataset();
        let from_tsv = crate::io::read_tsv(&tsv_path).unwrap();
        assert_eq!(from_fcb.fingerprint(), from_tsv.fingerprint());
        std::fs::remove_file(&tsv_path).ok();
        std::fs::remove_file(&fcb_path).ok();
    }

    #[test]
    fn info_reports_shape_and_missing() {
        let d = mixed();
        let path = tmp_dir().join("info.fcb");
        pack_dataset(&d, &path).unwrap();
        let info = FcbFile::open(&path).unwrap().info();
        assert_eq!(info.version, VERSION);
        assert_eq!(info.n_rows, 5);
        assert_eq!(info.n_features, 3);
        assert_eq!(info.columns[0].n_missing, 1);
        assert_eq!(info.columns[1].n_missing, 1);
        assert_eq!(info.columns[2].n_missing, 2);
        assert_eq!(info.columns[0].values_len, 40);
        assert_eq!(info.columns[1].values_len, 20);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn foreign_magic_and_short_files_are_rejected() {
        let dir = tmp_dir();
        let path = dir.join("foreign.fcb");
        std::fs::write(&path, b"NOTANFCBFILE padding padding padding padding padding padding padding padding").unwrap();
        match FcbFile::open(&path) {
            Err(FcbError::Foreign { .. }) => {}
            other => panic!("expected Foreign, got {other:?}"),
        }
        std::fs::write(&path, b"FRA").unwrap();
        match FcbFile::open(&path) {
            Err(FcbError::Truncated { .. }) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
        // Right magic, but nothing after it.
        std::fs::write(&path, MAGIC).unwrap();
        match FcbFile::open(&path) {
            Err(FcbError::Truncated { .. }) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unsupported_version_is_foreign() {
        let d = mixed();
        let path = tmp_dir().join("version.fcb");
        pack_dataset(&d, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8] = 9; // version 9
        // Re-seal the header CRC so the version check itself is what fires.
        let crc = crc32(&bytes[..56]).to_le_bytes();
        bytes[56..60].copy_from_slice(&crc);
        std::fs::write(&path, &bytes).unwrap();
        match FcbFile::open(&path) {
            Err(FcbError::Foreign { detail, .. }) => assert!(detail.contains("version 9")),
            other => panic!("expected Foreign, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncation_and_bit_flips_are_rejected_never_panic() {
        let d = mixed();
        let path = tmp_dir().join("corrupt.fcb");
        pack_dataset(&d, &path).unwrap();
        let clean = std::fs::read(&path).unwrap();

        // Every truncation point must be rejected (prefixes keeping the
        // magic are Truncated/Corrupt; shorter ones may be Foreign).
        for cut in [clean.len() - 1, clean.len() - 16, 200, 64, 8, 1] {
            std::fs::write(&path, &clean[..cut]).unwrap();
            assert!(FcbFile::open(&path).is_err(), "truncation at {cut} must be rejected");
        }
        // A bit flip anywhere must be caught by one of the CRCs.
        for pos in [9, 20, 70, 130, 200, clean.len() - 20, clean.len() - 4] {
            let mut bytes = clean.clone();
            bytes[pos] ^= 0x10;
            std::fs::write(&path, &bytes).unwrap();
            assert!(FcbFile::open(&path).is_err(), "bit flip at {pos} must be rejected");
        }
        // Trailing garbage is rejected too.
        let mut bytes = clean.clone();
        bytes.extend_from_slice(b"garbage");
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(FcbFile::open(&path), Err(FcbError::Corrupt { .. })));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn writer_rejects_bad_rows_and_row_counts() {
        let dir = tmp_dir();
        let path = dir.join("reject.fcb");
        let schema = mixed().schema().clone();
        let mut w = FcbWriter::create(&path, &schema, 2, 8).unwrap();
        assert!(matches!(w.push_row(&[Value::Real(1.0)]), Err(FcbError::Encode { .. })));
        assert!(matches!(
            w.push_row(&[Value::Categorical(0), Value::Real(1.0), Value::Real(1.0)]),
            Err(FcbError::Encode { .. })
        ));
        assert!(matches!(
            w.push_row(&[Value::Real(1.0), Value::Categorical(7), Value::Real(1.0)]),
            Err(FcbError::Encode { .. })
        ));
        w.push_row(&[Value::Real(1.0), Value::Categorical(0), Value::Missing]).unwrap();
        // Declared 2 rows, wrote 1: finish must refuse.
        assert!(matches!(w.finish(), Err(FcbError::Encode { .. })));
        std::fs::remove_file(dir.join("reject.fcb.tmp")).ok();
    }

    #[test]
    fn read_rows_returns_owned_ranges() {
        let d = mixed();
        let path = tmp_dir().join("ranges.fcb");
        pack_dataset(&d, &path).unwrap();
        let f = FcbFile::open(&path).unwrap();
        let mid = f.read_rows(1, 3);
        assert_eq!(mid.n_rows(), 2);
        assert_eq!(mid.value(0, 0), d.value(1, 0));
        assert_eq!(mid.value(1, 1), d.value(2, 1));
        let clamped = f.read_rows(4, 100);
        assert_eq!(clamped.n_rows(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn peak_buffer_stays_bounded_by_chunk() {
        // 64 rows through an 8-row chunk: the writer must never hold more
        // than one chunk's worth of cells.
        let base = mixed();
        let mut tall = base.clone();
        for _ in 0..4 {
            tall = tall.vstack(&tall);
        }
        assert_eq!(tall.n_rows(), 80);
        let path = tmp_dir().join("bounded.fcb");
        let stats = pack_dataset_chunked(&tall, &path, 8).unwrap();
        // Budget: 8 rows × (2×8 + 4 bytes) values + 3 bitmap bytes + the
        // scatter byte buffer (≤ one real extent chunk). Generous bound:
        let budget = stats.chunk_rows * (8 + 8 + 4) * 2 + 64;
        assert!(
            stats.peak_buffer_bytes <= budget,
            "peak {} exceeds budget {budget}",
            stats.peak_buffer_bytes
        );
        assert!(stats.file_bytes > budget as u64, "file must dwarf the buffer budget");
        std::fs::remove_file(&path).ok();
    }
}
