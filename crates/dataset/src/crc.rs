//! Checksums for durable on-disk artifacts: CRC-32 (IEEE) and FNV-1a 64.
//!
//! The run journal and the v3 model text format must detect torn or
//! corrupted writes — a process killed mid-`write` leaves a prefix of the
//! intended bytes, and resumable runs must distinguish "valid record" from
//! "trailing garbage". CRC-32 (the IEEE/zlib polynomial, reflected form)
//! guards individual records and files; FNV-1a 64 provides cheap content
//! fingerprints for header compatibility checks (config hash, dataset
//! fingerprint). Both are implemented here from the published algorithms so
//! no external dependency is needed, and both are stable across platforms
//! and releases — they are part of the on-disk format.

/// The reflected IEEE CRC-32 polynomial (as used by zlib, PNG, gzip).
const CRC32_POLY: u32 = 0xEDB8_8320;

/// Byte-indexed CRC-32 lookup table, built once at first use.
fn crc32_table() -> &'static [u32; 256] {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { (c >> 1) ^ CRC32_POLY } else { c >> 1 };
            }
            *entry = c;
        }
        table
    })
}

/// CRC-32 (IEEE) of `bytes`: standard init `0xFFFF_FFFF`, final inversion.
/// Matches zlib's `crc32(0, bytes)`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc32_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = (c >> 8) ^ table[((c ^ b as u32) & 0xFF) as usize];
    }
    !c
}

/// Incremental CRC-32 (IEEE) for streaming writers that cannot hold a whole
/// extent in memory — folding byte runs one at a time yields exactly
/// [`crc32`] of their concatenation.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// Fresh CRC state (standard init `0xFFFF_FFFF`).
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Fold `bytes` into the running CRC.
    pub fn write(&mut self, bytes: &[u8]) {
        let table = crc32_table();
        for &b in bytes {
            self.state = (self.state >> 8) ^ table[((self.state ^ b as u32) & 0xFF) as usize];
        }
    }

    /// The CRC of everything written so far (final inversion applied;
    /// the state itself is not consumed).
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64-bit hasher for content fingerprints.
///
/// Not cryptographic — it detects accidental mismatch (resuming a journal
/// against a different dataset or config), not adversarial collision.
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// Fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }

    /// Fold `bytes` into the running hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Fold a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Fold an `f64` by its IEEE-754 bit pattern (bit-exact, NaN-stable).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot FNV-1a 64 of a byte slice.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Published IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn fnv64_known_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn crc_detects_single_bit_flip() {
        let mut data = b"fracjournal record payload".to_vec();
        let clean = crc32(&data);
        data[7] ^= 0x01;
        assert_ne!(crc32(&data), clean);
    }

    #[test]
    fn incremental_crc_matches_oneshot() {
        let mut c = Crc32::new();
        c.write(b"1234");
        c.write(b"");
        c.write(b"56789");
        assert_eq!(c.finish(), crc32(b"123456789"));
        assert_eq!(Crc32::new().finish(), crc32(b""));
    }

    #[test]
    fn incremental_fnv_matches_oneshot() {
        let mut h = Fnv64::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv64(b"foobar"));
    }

    #[test]
    fn f64_hashing_is_bit_exact() {
        let mut a = Fnv64::new();
        a.write_f64(0.1 + 0.2);
        let mut b = Fnv64::new();
        b.write_f64(0.3);
        // 0.1 + 0.2 != 0.3 in IEEE-754; the fingerprint must see that.
        assert_ne!(a.finish(), b.finish());
    }
}
