//! Ingestion quarantine: degenerate-input screening before training.
//!
//! Precision-medicine matrices (GEO-style expression/SNP panels) routinely
//! carry poisoned cells — `Inf` from upstream log-transforms of zero,
//! constant probes, single-genotype SNP columns, columns that are entirely
//! missing. Each of those breaks a per-feature training problem in a
//! different way, and FRaC's fleet of per-feature models must degrade per
//! target rather than die. This module is the first line of that defence:
//! [`screen`] classifies every feature *before* it reaches a solver, and
//! [`sanitize`] rewrites poisoned cells to missing so downstream encoders
//! only ever see finite numbers.
//!
//! The screening verdicts map onto the fit pipeline's fallback ladder:
//!
//! * [`QuarantineReason::AllMissing`] — nothing to fit or score; the target
//!   is dropped and NS scores are renormalized over the survivors.
//! * [`QuarantineReason::ZeroVariance`] / [`QuarantineReason::SingleClass`]
//!   — a solver would only reproduce the constant; the baseline predictor
//!   is substituted without burning solver time.
//! * [`QuarantineReason::NonFinite`] — the cells are rewritten to missing
//!   (missing values contribute zero surprisal, exactly the paper's NS
//!   semantics) and the target trains normally on what remains.
//!
//! NaN in a real column already *means* missing ([`crate::dataset::Column`]),
//! so only `±Inf` counts as poison here.

use crate::dataset::{Column, Dataset, MISSING_CODE};

/// Why a feature was flagged by [`screen`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuarantineReason {
    /// Every entry is missing: nothing to fit or score. Strongest verdict —
    /// the target must be dropped.
    AllMissing,
    /// A real column whose present (finite) values are all identical; a
    /// trained model could only echo the constant, so the baseline
    /// predictor is substituted.
    ZeroVariance,
    /// A categorical column whose present codes are all one class; the
    /// majority baseline is substituted.
    SingleClass {
        /// The single observed class code.
        class: u32,
    },
    /// The column carries `±Inf` cells but is otherwise usable; the cells
    /// are sanitized to missing and the target trains normally.
    NonFinite {
        /// Number of poisoned cells.
        cells: usize,
    },
}

impl QuarantineReason {
    /// Whether this verdict removes the feature from the solver entirely
    /// (drop or baseline substitution) rather than merely cleaning cells.
    pub fn degrades_target(&self) -> bool {
        !matches!(self, QuarantineReason::NonFinite { .. })
    }
}

impl std::fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuarantineReason::AllMissing => write!(f, "all values missing"),
            QuarantineReason::ZeroVariance => write!(f, "zero variance"),
            QuarantineReason::SingleClass { class } => {
                write!(f, "single observed class {class}")
            }
            QuarantineReason::NonFinite { cells } => {
                write!(f, "{cells} non-finite cell(s)")
            }
        }
    }
}

/// One flagged feature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureScreen {
    /// Feature index in the dataset's schema.
    pub feature: usize,
    /// The (strongest applicable) verdict.
    pub reason: QuarantineReason,
}

/// Outcome of screening a whole dataset.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScreenReport {
    /// Flagged features, in schema order, one entry per flagged feature
    /// carrying its strongest verdict
    /// (AllMissing > ZeroVariance/SingleClass > NonFinite).
    pub flagged: Vec<FeatureScreen>,
    /// Total `±Inf` cells across the dataset — non-zero means [`sanitize`]
    /// will rewrite cells, independent of per-feature verdicts.
    pub n_nonfinite_cells: usize,
}

impl ScreenReport {
    /// No feature flagged and no poisoned cell: the dataset can be used
    /// as-is, bit for bit.
    pub fn is_clean(&self) -> bool {
        self.flagged.is_empty() && self.n_nonfinite_cells == 0
    }

    /// The verdict for a feature, if it was flagged.
    pub fn reason_for(&self, feature: usize) -> Option<QuarantineReason> {
        self.flagged
            .iter()
            .find(|s| s.feature == feature)
            .map(|s| s.reason)
    }

    /// Whether [`sanitize`] would copy the dataset.
    pub fn needs_sanitize(&self) -> bool {
        self.n_nonfinite_cells > 0
    }
}

/// Classify every feature of `data` before it reaches a solver.
///
/// Screening judges each column *as if already sanitized*: `±Inf` cells are
/// treated as missing when deciding all-missing / zero-variance, so the
/// verdict matches what training will actually see.
pub fn screen(data: &Dataset) -> ScreenReport {
    let mut report = ScreenReport::default();
    for j in 0..data.n_features() {
        let (reason, poisoned) = screen_column(data.column(j));
        report.n_nonfinite_cells += poisoned;
        if let Some(reason) = reason {
            report.flagged.push(FeatureScreen { feature: j, reason });
        }
    }
    report
}

/// Strongest verdict for one column plus its poisoned-cell count.
fn screen_column(col: &Column) -> (Option<QuarantineReason>, usize) {
    match col {
        Column::Real(values) => {
            let poisoned = values.iter().filter(|v| v.is_infinite()).count();
            let mut present = values.iter().filter(|v| v.is_finite());
            let reason = match present.next() {
                None => Some(QuarantineReason::AllMissing),
                Some(first) => {
                    if present.all(|v| v == first) {
                        Some(QuarantineReason::ZeroVariance)
                    } else if poisoned > 0 {
                        Some(QuarantineReason::NonFinite { cells: poisoned })
                    } else {
                        None
                    }
                }
            };
            (reason, poisoned)
        }
        Column::Categorical { codes, .. } => {
            let mut present = codes.iter().filter(|&&c| c != MISSING_CODE);
            let reason = match present.next() {
                None => Some(QuarantineReason::AllMissing),
                Some(&first) => {
                    if present.all(|&c| c == first) {
                        Some(QuarantineReason::SingleClass { class: first })
                    } else {
                        None
                    }
                }
            };
            (reason, 0)
        }
    }
}

/// Rewrite `±Inf` cells to missing (NaN), returning `None` when the dataset
/// is already free of them — the caller keeps the original, untouched, so
/// the clean path stays zero-copy and bit-identical.
pub fn sanitize(data: &Dataset) -> Option<Dataset> {
    let dirty = (0..data.n_features()).any(|j| match data.column(j) {
        Column::Real(v) => v.iter().any(|x| x.is_infinite()),
        Column::Categorical { .. } => false,
    });
    if !dirty {
        return None;
    }
    let columns = (0..data.n_features())
        .map(|j| match data.column(j) {
            Column::Real(v) => Column::Real(
                v.iter()
                    .map(|&x| if x.is_infinite() { f64::NAN } else { x })
                    .collect(),
            ),
            cat => cat.clone(),
        })
        .collect();
    Some(Dataset::new(data.schema().clone(), columns))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;

    fn poisoned() -> Dataset {
        DatasetBuilder::new()
            .real("ok", vec![1.0, 2.0, 3.0, 4.0])
            .real("inf", vec![1.0, f64::INFINITY, 3.0, f64::NEG_INFINITY])
            .real("const", vec![7.0, 7.0, f64::NAN, 7.0])
            .real("gone", vec![f64::NAN; 4])
            .categorical("snp", 3, vec![0, 1, 2, 0])
            .categorical("mono", 3, vec![2, 2, MISSING_CODE, 2])
            .categorical("empty", 2, vec![MISSING_CODE; 4])
            .build()
    }

    #[test]
    fn clean_dataset_screens_clean() {
        let d = DatasetBuilder::new()
            .real("a", vec![1.0, 2.0, f64::NAN])
            .categorical("b", 2, vec![0, 1, MISSING_CODE])
            .build();
        let r = screen(&d);
        assert!(r.is_clean());
        assert!(!r.needs_sanitize());
        assert!(sanitize(&d).is_none());
    }

    #[test]
    fn screen_flags_each_degeneracy() {
        let r = screen(&poisoned());
        assert_eq!(r.reason_for(0), None);
        assert_eq!(r.reason_for(1), Some(QuarantineReason::NonFinite { cells: 2 }));
        assert_eq!(r.reason_for(2), Some(QuarantineReason::ZeroVariance));
        assert_eq!(r.reason_for(3), Some(QuarantineReason::AllMissing));
        assert_eq!(r.reason_for(4), None);
        assert_eq!(r.reason_for(5), Some(QuarantineReason::SingleClass { class: 2 }));
        assert_eq!(r.reason_for(6), Some(QuarantineReason::AllMissing));
        assert_eq!(r.n_nonfinite_cells, 2);
        assert!(r.needs_sanitize());
    }

    #[test]
    fn all_missing_beats_other_verdicts() {
        // A column of only Inf is all-missing once sanitized, not non-finite.
        let d = DatasetBuilder::new()
            .real("x", vec![f64::INFINITY, f64::NEG_INFINITY])
            .build();
        let r = screen(&d);
        assert_eq!(r.reason_for(0), Some(QuarantineReason::AllMissing));
        assert_eq!(r.n_nonfinite_cells, 2);
    }

    #[test]
    fn zero_variance_with_poison_still_counts_cells() {
        let d = DatasetBuilder::new()
            .real("x", vec![5.0, f64::INFINITY, 5.0])
            .build();
        let r = screen(&d);
        assert_eq!(r.reason_for(0), Some(QuarantineReason::ZeroVariance));
        assert_eq!(r.n_nonfinite_cells, 1);
        assert!(r.needs_sanitize());
    }

    #[test]
    fn sanitize_rewrites_inf_to_missing_only() {
        let d = poisoned();
        let s = sanitize(&d).expect("poisoned dataset must be copied");
        assert_eq!(s.n_rows(), d.n_rows());
        let col = s.column(1).as_real().unwrap();
        assert_eq!(col[0], 1.0);
        assert!(col[1].is_nan());
        assert_eq!(col[2], 3.0);
        assert!(col[3].is_nan());
        // Untouched columns are value-identical.
        assert_eq!(s.column(0), d.column(0));
        assert_eq!(s.column(4), d.column(4));
        // Re-screening the sanitized copy finds no poison left.
        assert_eq!(screen(&s).n_nonfinite_cells, 0);
    }

    #[test]
    fn degrades_target_distinguishes_verdicts() {
        assert!(QuarantineReason::AllMissing.degrades_target());
        assert!(QuarantineReason::ZeroVariance.degrades_target());
        assert!(QuarantineReason::SingleClass { class: 0 }.degrades_target());
        assert!(!QuarantineReason::NonFinite { cells: 3 }.degrades_target());
    }

    #[test]
    fn display_is_actionable() {
        assert_eq!(QuarantineReason::AllMissing.to_string(), "all values missing");
        assert!(QuarantineReason::NonFinite { cells: 2 }.to_string().contains("2"));
    }
}
