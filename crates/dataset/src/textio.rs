//! Minimal line-oriented text (de)serialization substrate.
//!
//! Fitted FRaC models must be persistable (train once on the reference
//! cohort, screen new samples for months) without pulling a serialization
//! framework into a numerics workspace. The format is deliberately plain:
//! one record per line, `tag value value …`, human-inspectable and
//! dependency-free. Floats are written with `{:?}` (shortest round-trip
//! representation), so save/load is bit-exact.

/// Writer side: push tagged lines into a growing buffer.
#[derive(Debug, Default)]
pub struct TextWriter {
    buf: String,
}

impl TextWriter {
    /// New empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Write a line: the tag followed by space-separated fields.
    pub fn line<I, S>(&mut self, tag: &str, fields: I)
    where
        I: IntoIterator<Item = S>,
        S: std::fmt::Display,
    {
        self.buf.push_str(tag);
        for f in fields {
            self.buf.push(' ');
            self.buf.push_str(&f.to_string());
        }
        self.buf.push('\n');
    }

    /// Write a tag-only line.
    pub fn tag(&mut self, tag: &str) {
        self.buf.push_str(tag);
        self.buf.push('\n');
    }

    /// Write a line of f64 fields in round-trip representation.
    pub fn floats(&mut self, tag: &str, values: &[f64]) {
        self.buf.push_str(tag);
        for v in values {
            self.buf.push(' ');
            self.buf.push_str(&format!("{v:?}"));
        }
        self.buf.push('\n');
    }

    /// Finish, returning the buffer.
    pub fn finish(self) -> String {
        self.buf
    }
}

/// Reader side: consume tagged lines with typed field extraction.
#[derive(Debug)]
pub struct TextReader<'a> {
    lines: std::str::Lines<'a>,
    /// 1-based line number of the last line read (for error messages).
    line_no: usize,
}

/// Structured parse error: what went wrong and where.
///
/// `line` is 1-based (0 when the failure is not tied to a specific line,
/// e.g. a semantic check after parsing); `column` is the 0-based field index
/// within the line, when known. Producers that only have a message can use
/// the `From<String>` / `From<&str>` shims.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextError {
    /// 1-based line number; 0 when unknown.
    pub line: usize,
    /// 0-based field index within the line, when known.
    pub column: Option<usize>,
    /// Description of the problem.
    pub message: String,
}

impl TextError {
    /// Error anchored to a line.
    pub fn at(line: usize, message: impl Into<String>) -> Self {
        TextError { line, column: None, message: message.into() }
    }

    /// Error anchored to a field within a line.
    pub fn at_field(line: usize, column: usize, message: impl Into<String>) -> Self {
        TextError { line, column: Some(column), message: message.into() }
    }
}

impl std::fmt::Display for TextError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (self.line, self.column) {
            (0, _) => write!(f, "{}", self.message),
            (line, None) => write!(f, "line {line}: {}", self.message),
            (line, Some(col)) => write!(f, "line {line}, field {col}: {}", self.message),
        }
    }
}

impl std::error::Error for TextError {}

impl From<String> for TextError {
    fn from(message: String) -> Self {
        TextError { line: 0, column: None, message }
    }
}

impl From<&str> for TextError {
    fn from(message: &str) -> Self {
        TextError { line: 0, column: None, message: message.to_string() }
    }
}

impl<'a> TextReader<'a> {
    /// Read from a text buffer.
    pub fn new(text: &'a str) -> Self {
        TextReader { lines: text.lines(), line_no: 0 }
    }

    /// Next non-empty line's fields; errors at end of input.
    fn next_fields(&mut self) -> Result<Vec<&'a str>, TextError> {
        loop {
            self.line_no += 1;
            match self.lines.next() {
                None => return Err(TextError::at(self.line_no, "unexpected end of input")),
                Some(l) if l.trim().is_empty() => continue,
                Some(l) => return Ok(l.split_whitespace().collect()),
            }
        }
    }

    /// Consume a line that must start with `tag`; returns its fields.
    pub fn expect(&mut self, tag: &str) -> Result<Vec<&'a str>, TextError> {
        let fields = self.next_fields()?;
        if fields.first() != Some(&tag) {
            return Err(TextError::at(
                self.line_no,
                format!(
                    "expected tag `{tag}`, found `{}`",
                    fields.first().unwrap_or(&"")
                ),
            ));
        }
        Ok(fields[1..].to_vec())
    }

    /// Consume a `tag`-line and parse all fields as `T`.
    pub fn parse_all<T: std::str::FromStr>(&mut self, tag: &str) -> Result<Vec<T>, TextError> {
        let fields = self.expect(tag)?;
        let line_no = self.line_no;
        fields
            .into_iter()
            .enumerate()
            .map(|(i, f)| {
                f.parse::<T>().map_err(|_| {
                    TextError::at_field(line_no, i, format!("bad field `{f}` for `{tag}`"))
                })
            })
            .collect()
    }

    /// Consume a `tag`-line that must carry exactly one field, parsed as `T`.
    pub fn parse_one<T: std::str::FromStr>(&mut self, tag: &str) -> Result<T, TextError> {
        let v: Vec<T> = self.parse_all(tag)?;
        let found = v.len();
        match v.into_iter().next() {
            Some(one) if found == 1 => Ok(one),
            _ => Err(TextError::at(
                self.line_no,
                format!("tag `{tag}` expects exactly one field, found {found}"),
            )),
        }
    }

    /// 1-based line number of the last line consumed (0 before any read).
    /// Lets callers anchor semantic errors — e.g. a duplicate section — to
    /// the line that introduced them.
    pub fn line(&self) -> usize {
        self.line_no
    }

    /// Peek whether the next non-empty line starts with `tag` (does not
    /// consume).
    pub fn peek_is(&self, tag: &str) -> bool {
        self.lines
            .clone()
            .find(|l| !l.trim().is_empty())
            .is_some_and(|l| l.split_whitespace().next() == Some(tag))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_tagged_lines() {
        let mut w = TextWriter::new();
        w.line("header", ["v1"]);
        w.floats("weights", &[1.5, -0.25, 1e-300, f64::MAX]);
        w.line("count", [42u32]);
        w.tag("end");
        let text = w.finish();

        let mut r = TextReader::new(&text);
        assert_eq!(r.expect("header").unwrap(), vec!["v1"]);
        let ws: Vec<f64> = r.parse_all("weights").unwrap();
        assert_eq!(ws, vec![1.5, -0.25, 1e-300, f64::MAX]);
        assert_eq!(r.parse_one::<u32>("count").unwrap(), 42);
        assert!(r.expect("end").unwrap().is_empty());
    }

    #[test]
    fn float_roundtrip_is_bit_exact() {
        let values = [0.1, 1.0 / 3.0, std::f64::consts::PI, -2.2250738585072014e-308];
        let mut w = TextWriter::new();
        w.floats("v", &values);
        let text = w.finish();
        let mut r = TextReader::new(&text);
        let back: Vec<f64> = r.parse_all("v").unwrap();
        for (a, b) in values.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn wrong_tag_is_an_error_with_location() {
        let mut r = TextReader::new("alpha 1\nbeta 2\n");
        assert!(r.expect("alpha").is_ok());
        let err = r.expect("gamma").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"), "{err}");
        assert!(err.to_string().contains("gamma"), "{err}");
    }

    #[test]
    fn eof_and_bad_fields_error() {
        let mut r = TextReader::new("x 1\n");
        assert!(r.parse_all::<i32>("x").is_ok());
        assert!(r.expect("y").unwrap_err().to_string().contains("end of input"));
        let mut r = TextReader::new("x one two\n");
        let err = r.parse_all::<i32>("x").unwrap_err();
        assert!(err.to_string().contains("bad field"), "{err}");
        assert_eq!((err.line, err.column), (1, Some(0)));
        let mut r = TextReader::new("x 1 2\n");
        let err = r.parse_one::<i32>("x").unwrap_err();
        assert!(err.to_string().contains("exactly one"), "{err}");
    }

    #[test]
    fn message_only_errors_display_bare() {
        let e: TextError = "semantic problem".into();
        assert_eq!(e.to_string(), "semantic problem");
        let e = TextError::at_field(3, 1, "bad cell");
        assert_eq!(e.to_string(), "line 3, field 1: bad cell");
    }

    #[test]
    fn empty_lines_are_skipped_and_peek_works() {
        let mut r = TextReader::new("\n\na 1\n\nb 2\n");
        assert!(r.peek_is("a"));
        assert_eq!(r.parse_one::<i32>("a").unwrap(), 1);
        assert!(r.peek_is("b"));
        assert!(!r.peek_is("a"));
    }
}
