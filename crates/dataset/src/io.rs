//! TSV interchange format with a typed header.
//!
//! Format: the first line is a header of `name:kind` pairs where `kind` is
//! `real` or `catK` (K = arity); subsequent lines are rows with `?` for
//! missing values. This is sufficient to round-trip any [`Dataset`] and to
//! import externally prepared expression/SNP matrices.
//!
//! ```text
//! geneA:real<TAB>geneB:real<TAB>rs123:cat3
//! 0.52<TAB>-1.3<TAB>2
//! ?<TAB>0.7<TAB>0
//! ```

use crate::dataset::{Column, Dataset};
use crate::schema::{Feature, FeatureKind, Schema};
use std::fmt::Write as _;
use std::io::{self, BufRead, Write};
use std::path::Path;

/// Errors arising while parsing the TSV format.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed header cell.
    Header(String),
    /// Malformed data cell, with (line, column) for context.
    Cell {
        /// 1-based line number.
        line: usize,
        /// 0-based column index.
        column: usize,
        /// Description of the problem.
        message: String,
    },
    /// A row with the wrong number of cells.
    RowWidth {
        /// 1-based line number.
        line: usize,
        /// Cells found.
        found: usize,
        /// Cells expected from the header.
        expected: usize,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "I/O error: {e}"),
            ParseError::Header(msg) => write!(f, "bad header: {msg}"),
            ParseError::Cell { line, column, message } => {
                write!(f, "line {line}, column {column}: {message}")
            }
            ParseError::RowWidth { line, found, expected } => {
                write!(f, "line {line}: {found} cells, expected {expected}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

impl From<crate::textio::TextError> for ParseError {
    fn from(e: crate::textio::TextError) -> Self {
        ParseError::Cell {
            line: e.line,
            column: e.column.unwrap_or(0),
            message: e.message,
        }
    }
}

fn parse_kind(s: &str) -> Result<FeatureKind, String> {
    if s == "real" {
        Ok(FeatureKind::Real)
    } else if let Some(k) = s.strip_prefix("cat") {
        let arity: u32 = k.parse().map_err(|_| format!("bad arity in kind `{s}`"))?;
        if arity < 2 {
            return Err(format!("arity must be ≥ 2, got `{s}`"));
        }
        Ok(FeatureKind::Categorical { arity })
    } else {
        Err(format!("unknown kind `{s}` (expected `real` or `catK`)"))
    }
}

/// Serialize a data set to the TSV format.
pub fn to_tsv(data: &Dataset) -> String {
    let mut out = String::new();
    let header: Vec<String> = data
        .schema()
        .iter()
        .map(|f| format!("{}:{}", f.name, f.kind))
        .collect();
    out.push_str(&header.join("\t"));
    out.push('\n');
    for r in 0..data.n_rows() {
        for j in 0..data.n_features() {
            if j > 0 {
                out.push('\t');
            }
            let _ = write!(out, "{}", data.value(r, j));
        }
        out.push('\n');
    }
    out
}

/// Parse a data set from the TSV format.
pub fn from_tsv(text: &str) -> Result<Dataset, ParseError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| ParseError::Header("empty input".into()))?;
    let mut features = Vec::new();
    for cell in header.split('\t') {
        let (name, kind) = cell
            .rsplit_once(':')
            .ok_or_else(|| ParseError::Header(format!("cell `{cell}` lacks `:kind`")))?;
        let kind = parse_kind(kind).map_err(ParseError::Header)?;
        features.push(Feature::new(name, kind));
    }
    let schema = Schema::new(features);
    let n_features = schema.len();

    let mut columns: Vec<Column> = schema
        .iter()
        .map(|f| match f.kind {
            FeatureKind::Real => Column::Real(Vec::new()),
            FeatureKind::Categorical { arity } => {
                Column::Categorical { arity, codes: Vec::new() }
            }
        })
        .collect();
    let mut n_rows = 0usize;
    for (lineno, line) in lines {
        if line.is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split('\t').collect();
        if cells.len() != n_features {
            return Err(ParseError::RowWidth {
                line: lineno + 1,
                found: cells.len(),
                expected: n_features,
            });
        }
        for (j, cell) in cells.iter().enumerate() {
            let cell_err = |message: String| ParseError::Cell {
                line: lineno + 1,
                column: j,
                message,
            };
            match &mut columns[j] {
                Column::Real(v) => {
                    if *cell == "?" {
                        v.push(f64::NAN);
                    } else {
                        v.push(
                            cell.parse::<f64>()
                                .map_err(|_| cell_err(format!("bad real `{cell}`")))?,
                        );
                    }
                }
                Column::Categorical { arity, codes } => {
                    if *cell == "?" {
                        codes.push(crate::dataset::MISSING_CODE);
                    } else {
                        let c: u32 = cell
                            .parse()
                            .map_err(|_| cell_err(format!("bad code `{cell}`")))?;
                        if c >= *arity {
                            return Err(cell_err(format!(
                                "code {c} out of range for arity {arity}"
                            )));
                        }
                        codes.push(c);
                    }
                }
            }
        }
        n_rows += 1;
    }
    let _ = n_rows;
    Ok(Dataset::new(schema, columns))
}

/// Write a data set to a file in the TSV format.
pub fn write_tsv(data: &Dataset, path: impl AsRef<Path>) -> io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    f.write_all(to_tsv(data).as_bytes())
}

/// Read a data set from a TSV file.
pub fn read_tsv(path: impl AsRef<Path>) -> Result<Dataset, ParseError> {
    let file = std::fs::File::open(path)?;
    let mut text = String::new();
    let mut reader = std::io::BufReader::new(file);
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        text.push_str(&line);
    }
    from_tsv(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetBuilder, Value, MISSING_CODE};

    fn sample() -> Dataset {
        DatasetBuilder::new()
            .real("geneA", vec![0.5, f64::NAN, -2.25])
            .categorical("rs1", 3, vec![2, 0, MISSING_CODE])
            .build()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let d = sample();
        let text = to_tsv(&d);
        let back = from_tsv(&text).unwrap();
        assert_eq!(back.schema(), d.schema());
        assert_eq!(back.n_rows(), d.n_rows());
        for r in 0..d.n_rows() {
            for j in 0..d.n_features() {
                match (d.value(r, j), back.value(r, j)) {
                    (Value::Real(a), Value::Real(b)) => assert!((a - b).abs() < 1e-12),
                    (a, b) => assert_eq!(a, b),
                }
            }
        }
    }

    #[test]
    fn header_encodes_kinds() {
        let text = to_tsv(&sample());
        assert!(text.starts_with("geneA:real\trs1:cat3\n"));
    }

    #[test]
    fn missing_serialized_as_question_mark() {
        let text = to_tsv(&sample());
        let row2: Vec<&str> = text.lines().nth(2).unwrap().split('\t').collect();
        assert_eq!(row2[0], "?");
    }

    #[test]
    fn rejects_bad_kind() {
        assert!(matches!(
            from_tsv("a:flavor\n1\n"),
            Err(ParseError::Header(_))
        ));
        assert!(matches!(from_tsv("a:cat1\n0\n"), Err(ParseError::Header(_))));
    }

    #[test]
    fn rejects_ragged_rows() {
        let err = from_tsv("a:real\tb:real\n1.0\n").unwrap_err();
        assert!(matches!(err, ParseError::RowWidth { expected: 2, found: 1, .. }));
    }

    #[test]
    fn rejects_out_of_range_code() {
        let err = from_tsv("a:cat2\n5\n").unwrap_err();
        assert!(matches!(err, ParseError::Cell { .. }));
    }

    #[test]
    fn rejects_unparseable_real() {
        let err = from_tsv("a:real\nxyz\n").unwrap_err();
        assert!(matches!(err, ParseError::Cell { .. }));
    }

    #[test]
    fn empty_rows_are_skipped() {
        let d = from_tsv("a:real\n1.0\n\n2.0\n").unwrap();
        assert_eq!(d.n_rows(), 2);
    }

    #[test]
    fn file_roundtrip() {
        let d = sample();
        let dir = std::env::temp_dir().join("frac-dataset-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.tsv");
        write_tsv(&d, &path).unwrap();
        let back = read_tsv(&path).unwrap();
        assert_eq!(back.n_rows(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn colon_in_name_parses_via_rsplit() {
        let d = from_tsv("chr1:1234:real\n0.5\n").unwrap();
        assert_eq!(d.schema().feature(0).name, "chr1:1234");
    }
}
