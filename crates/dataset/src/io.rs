//! TSV interchange format with a typed header.
//!
//! Format: the first line is a header of `name:kind` pairs where `kind` is
//! `real` or `catK` (K = arity); subsequent lines are rows with `?` for
//! missing values. This is sufficient to round-trip any [`Dataset`] and to
//! import externally prepared expression/SNP matrices.
//!
//! ```text
//! geneA:real<TAB>geneB:real<TAB>rs123:cat3
//! 0.52<TAB>-1.3<TAB>2
//! ?<TAB>0.7<TAB>0
//! ```

use crate::dataset::{Column, Dataset, Value};
use crate::schema::{Feature, FeatureKind, Schema};
use std::fmt::Write as _;
use std::io::{self, BufRead, Write};
use std::path::Path;

/// Errors arising while parsing the TSV format.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed header cell.
    Header(String),
    /// Malformed data cell, with (line, column) for context.
    Cell {
        /// 1-based line number.
        line: usize,
        /// 0-based column index.
        column: usize,
        /// Description of the problem.
        message: String,
    },
    /// A row with the wrong number of cells.
    RowWidth {
        /// 1-based line number.
        line: usize,
        /// Cells found.
        found: usize,
        /// Cells expected from the header.
        expected: usize,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "I/O error: {e}"),
            ParseError::Header(msg) => write!(f, "bad header: {msg}"),
            ParseError::Cell { line, column, message } => {
                write!(f, "line {line}, column {column}: {message}")
            }
            ParseError::RowWidth { line, found, expected } => {
                write!(f, "line {line}: {found} cells, expected {expected}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

impl From<crate::textio::TextError> for ParseError {
    fn from(e: crate::textio::TextError) -> Self {
        ParseError::Cell {
            line: e.line,
            column: e.column.unwrap_or(0),
            message: e.message,
        }
    }
}

fn parse_kind(s: &str) -> Result<FeatureKind, String> {
    if s == "real" {
        Ok(FeatureKind::Real)
    } else if let Some(k) = s.strip_prefix("cat") {
        let arity: u32 = k.parse().map_err(|_| format!("bad arity in kind `{s}`"))?;
        if arity < 2 {
            return Err(format!("arity must be ≥ 2, got `{s}`"));
        }
        Ok(FeatureKind::Categorical { arity })
    } else {
        Err(format!("unknown kind `{s}` (expected `real` or `catK`)"))
    }
}

/// Serialize a data set to the TSV format.
pub fn to_tsv(data: &Dataset) -> String {
    let mut out = String::new();
    let header: Vec<String> = data
        .schema()
        .iter()
        .map(|f| format!("{}:{}", f.name, f.kind))
        .collect();
    out.push_str(&header.join("\t"));
    out.push('\n');
    for r in 0..data.n_rows() {
        for j in 0..data.n_features() {
            if j > 0 {
                out.push('\t');
            }
            let _ = write!(out, "{}", data.value(r, j));
        }
        out.push('\n');
    }
    out
}

/// Parse a header line of `name:kind` pairs into a [`Schema`].
///
/// This is the first line of the TSV format, split out so long-lived
/// consumers (the scoring daemon) can fix a schema once and then decode
/// records incrementally with [`parse_record`] / [`parse_json_record`].
pub fn schema_from_header(header: &str) -> Result<Schema, ParseError> {
    let header = header.trim_end_matches(['\r', '\n']);
    if header.is_empty() {
        return Err(ParseError::Header("empty input".into()));
    }
    let mut features = Vec::new();
    for cell in header.split('\t') {
        let (name, kind) = cell
            .rsplit_once(':')
            .ok_or_else(|| ParseError::Header(format!("cell `{cell}` lacks `:kind`")))?;
        let kind = parse_kind(kind).map_err(ParseError::Header)?;
        features.push(Feature::new(name, kind));
    }
    Ok(Schema::new(features))
}

/// Parse one cell of a TSV row against its schema kind.
fn parse_cell(
    kind: FeatureKind,
    cell: &str,
    line: usize,
    column: usize,
) -> Result<Value, ParseError> {
    let cell_err = |message: String| ParseError::Cell { line, column, message };
    if cell == "?" {
        return Ok(Value::Missing);
    }
    match kind {
        FeatureKind::Real => cell
            .parse::<f64>()
            .map(Value::Real)
            .map_err(|_| cell_err(format!("bad real `{cell}`"))),
        FeatureKind::Categorical { arity } => {
            let c: u32 = cell
                .parse()
                .map_err(|_| cell_err(format!("bad code `{cell}`")))?;
            if c >= arity {
                return Err(cell_err(format!("code {c} out of range for arity {arity}")));
            }
            Ok(Value::Categorical(c))
        }
    }
}

/// Incrementally decode one TSV data row against a fixed schema.
///
/// `line` is the 1-based line number reported in errors. The returned
/// values are exactly what [`from_tsv`] would have stored for the same
/// row, so records decoded one at a time score identically to records
/// parsed from a whole file.
pub fn parse_record(
    schema: &Schema,
    row: &str,
    line: usize,
) -> Result<Vec<Value>, ParseError> {
    let row = row.trim_end_matches(['\r', '\n']);
    let cells: Vec<&str> = row.split('\t').collect();
    if cells.len() != schema.len() {
        return Err(ParseError::RowWidth {
            line,
            found: cells.len(),
            expected: schema.len(),
        });
    }
    cells
        .iter()
        .enumerate()
        .map(|(j, cell)| parse_cell(schema.kind(j), cell, line, j))
        .collect()
}

/// Incrementally decode one flat JSON object (`{"name": value, …}`)
/// against a fixed schema.
///
/// Values may be numbers (reals, or integer codes for categorical
/// features), `null` / the string `"?"` for missing, or quoted numbers.
/// Features absent from the object are missing; unknown keys are an
/// error (they usually mean a schema mismatch, which must not be
/// silently dropped in a clinical scoring path). Only the flat subset of
/// JSON needed for one record is accepted — nested objects or arrays are
/// rejected.
pub fn parse_json_record(
    schema: &Schema,
    text: &str,
    line: usize,
) -> Result<Vec<Value>, ParseError> {
    let cell_err = |column: usize, message: String| ParseError::Cell { line, column, message };
    let mut values = vec![Value::Missing; schema.len()];
    let mut seen = vec![false; schema.len()];
    let mut p = JsonCursor { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    p.expect(b'{').map_err(|m| cell_err(0, m))?;
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.string().map_err(|m| cell_err(0, m))?;
            let j = schema
                .index_of(&key)
                .ok_or_else(|| cell_err(0, format!("unknown feature `{key}`")))?;
            if seen[j] {
                return Err(cell_err(j, format!("duplicate feature `{key}`")));
            }
            seen[j] = true;
            p.skip_ws();
            p.expect(b':').map_err(|m| cell_err(j, m))?;
            p.skip_ws();
            values[j] = match p.peek() {
                Some(b'n') => {
                    p.literal("null").map_err(|m| cell_err(j, m))?;
                    Value::Missing
                }
                Some(b'"') => {
                    let s = p.string().map_err(|m| cell_err(j, m))?;
                    parse_cell(schema.kind(j), &s, line, j)?
                }
                _ => {
                    let s = p.number().map_err(|m| cell_err(j, m))?;
                    parse_cell(schema.kind(j), &s, line, j)?
                }
            };
            p.skip_ws();
            match p.peek() {
                Some(b',') => p.pos += 1,
                Some(b'}') => {
                    p.pos += 1;
                    break;
                }
                _ => return Err(cell_err(j, "expected `,` or `}`".into())),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(cell_err(0, "trailing bytes after JSON object".into()));
    }
    Ok(values)
}

/// Byte cursor for the minimal flat-JSON record parser (no dependency,
/// no recursion — a record is one object of scalars).
struct JsonCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonCursor<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}`", b as char))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected `{lit}`"))
        }
    }

    /// A quoted string; `\"` `\\` `\/` and whitespace escapes only (feature
    /// names and the `?` missing marker need nothing more).
    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    out.push(match esc {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        other => {
                            return Err(format!("unsupported escape `\\{}`", other as char))
                        }
                    });
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through byte-wise; the
                    // source is a &str so the bytes are valid.
                    let start = self.pos;
                    while self
                        .peek()
                        .is_some_and(|b| b != b'"' && b != b'\\')
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "invalid UTF-8 in string".to_string())?,
                    );
                }
            }
        }
    }

    /// The raw text of a JSON number (validated downstream by the typed
    /// cell parser).
    fn number(&mut self) -> Result<String, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err("expected a value".into());
        }
        String::from_utf8(self.bytes[start..self.pos].to_vec())
            .map_err(|_| "invalid number".into())
    }
}

/// Parse a data set from the TSV format.
pub fn from_tsv(text: &str) -> Result<Dataset, ParseError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| ParseError::Header("empty input".into()))?;
    let schema = schema_from_header(header)?;
    let n_features = schema.len();

    let mut columns: Vec<Column> = schema
        .iter()
        .map(|f| match f.kind {
            FeatureKind::Real => Column::Real(Vec::new().into()),
            FeatureKind::Categorical { arity } => {
                Column::Categorical { arity, codes: Vec::new().into() }
            }
        })
        .collect();
    for (lineno, line) in lines {
        if line.is_empty() {
            continue;
        }
        let row = parse_record(&schema, line, lineno + 1)?;
        debug_assert_eq!(row.len(), n_features);
        for (col, v) in columns.iter_mut().zip(row) {
            match (col, v) {
                (Column::Real(vec), Value::Real(x)) => vec.push(x),
                (Column::Real(vec), Value::Missing) => vec.push(f64::NAN),
                (Column::Categorical { codes, .. }, Value::Categorical(c)) => codes.push(c),
                (Column::Categorical { codes, .. }, Value::Missing) => {
                    codes.push(crate::dataset::MISSING_CODE)
                }
                // parse_record types cells from the same schema the columns
                // were built from, so kinds always agree.
                _ => unreachable!("cell kind matches its column"),
            }
        }
    }
    Ok(Dataset::new(schema, columns))
}

/// Write a data set to a file in the TSV format.
pub fn write_tsv(data: &Dataset, path: impl AsRef<Path>) -> io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    f.write_all(to_tsv(data).as_bytes())
}

/// Read a data set from a TSV file.
pub fn read_tsv(path: impl AsRef<Path>) -> Result<Dataset, ParseError> {
    let file = std::fs::File::open(path)?;
    let mut text = String::new();
    let mut reader = std::io::BufReader::new(file);
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        text.push_str(&line);
    }
    from_tsv(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetBuilder, Value, MISSING_CODE};

    fn sample() -> Dataset {
        DatasetBuilder::new()
            .real("geneA", vec![0.5, f64::NAN, -2.25])
            .categorical("rs1", 3, vec![2, 0, MISSING_CODE])
            .build()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let d = sample();
        let text = to_tsv(&d);
        let back = from_tsv(&text).unwrap();
        assert_eq!(back.schema(), d.schema());
        assert_eq!(back.n_rows(), d.n_rows());
        for r in 0..d.n_rows() {
            for j in 0..d.n_features() {
                match (d.value(r, j), back.value(r, j)) {
                    (Value::Real(a), Value::Real(b)) => assert!((a - b).abs() < 1e-12),
                    (a, b) => assert_eq!(a, b),
                }
            }
        }
    }

    #[test]
    fn header_encodes_kinds() {
        let text = to_tsv(&sample());
        assert!(text.starts_with("geneA:real\trs1:cat3\n"));
    }

    #[test]
    fn missing_serialized_as_question_mark() {
        let text = to_tsv(&sample());
        let row2: Vec<&str> = text.lines().nth(2).unwrap().split('\t').collect();
        assert_eq!(row2[0], "?");
    }

    #[test]
    fn rejects_bad_kind() {
        assert!(matches!(
            from_tsv("a:flavor\n1\n"),
            Err(ParseError::Header(_))
        ));
        assert!(matches!(from_tsv("a:cat1\n0\n"), Err(ParseError::Header(_))));
    }

    #[test]
    fn rejects_ragged_rows() {
        let err = from_tsv("a:real\tb:real\n1.0\n").unwrap_err();
        assert!(matches!(err, ParseError::RowWidth { expected: 2, found: 1, .. }));
    }

    #[test]
    fn rejects_out_of_range_code() {
        let err = from_tsv("a:cat2\n5\n").unwrap_err();
        assert!(matches!(err, ParseError::Cell { .. }));
    }

    #[test]
    fn rejects_unparseable_real() {
        let err = from_tsv("a:real\nxyz\n").unwrap_err();
        assert!(matches!(err, ParseError::Cell { .. }));
    }

    #[test]
    fn empty_rows_are_skipped() {
        let d = from_tsv("a:real\n1.0\n\n2.0\n").unwrap();
        assert_eq!(d.n_rows(), 2);
    }

    #[test]
    fn file_roundtrip() {
        let d = sample();
        let dir = std::env::temp_dir().join("frac-dataset-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.tsv");
        write_tsv(&d, &path).unwrap();
        let back = read_tsv(&path).unwrap();
        assert_eq!(back.n_rows(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn colon_in_name_parses_via_rsplit() {
        let d = from_tsv("chr1:1234:real\n0.5\n").unwrap();
        assert_eq!(d.schema().feature(0).name, "chr1:1234");
    }

    #[test]
    fn incremental_records_match_whole_file_parse() {
        let d = sample();
        let text = to_tsv(&d);
        let mut lines = text.lines();
        let schema = schema_from_header(lines.next().unwrap()).unwrap();
        assert_eq!(&schema, d.schema());
        let mut rebuilt = Dataset::empty(schema.clone());
        for (i, line) in lines.enumerate() {
            rebuilt.push_row(&parse_record(&schema, line, i + 2).unwrap());
        }
        assert_eq!(rebuilt.n_rows(), d.n_rows());
        for r in 0..d.n_rows() {
            for j in 0..d.n_features() {
                assert_eq!(rebuilt.value(r, j), d.value(r, j), "({r},{j})");
            }
        }
    }

    #[test]
    fn parse_record_errors_carry_the_line_number() {
        let schema = schema_from_header("a:real\tb:cat3").unwrap();
        match parse_record(&schema, "1.0", 7).unwrap_err() {
            ParseError::RowWidth { line: 7, found: 1, expected: 2 } => {}
            e => panic!("{e}"),
        }
        match parse_record(&schema, "x\t1", 9).unwrap_err() {
            ParseError::Cell { line: 9, column: 0, .. } => {}
            e => panic!("{e}"),
        }
        match parse_record(&schema, "1.0\t5", 3).unwrap_err() {
            ParseError::Cell { line: 3, column: 1, message } => {
                assert!(message.contains("out of range"), "{message}");
            }
            e => panic!("{e}"),
        }
    }

    #[test]
    fn json_records_decode_against_the_schema() {
        let schema = schema_from_header("geneA:real\trs1:cat3").unwrap();
        let v = parse_json_record(&schema, r#"{"geneA": -1.25, "rs1": 2}"#, 1).unwrap();
        assert_eq!(v, vec![Value::Real(-1.25), Value::Categorical(2)]);
        // Order-independent; absent and null keys are missing; "?" too.
        let v = parse_json_record(&schema, r#"{"rs1": 0}"#, 1).unwrap();
        assert_eq!(v, vec![Value::Missing, Value::Categorical(0)]);
        let v = parse_json_record(&schema, r#"{"geneA": null, "rs1": "?"}"#, 1).unwrap();
        assert_eq!(v, vec![Value::Missing, Value::Missing]);
        let v = parse_json_record(&schema, "{}", 1).unwrap();
        assert_eq!(v, vec![Value::Missing, Value::Missing]);
        // Quoted numbers parse like TSV cells.
        let v = parse_json_record(&schema, r#"{"geneA": "0.5"}"#, 1).unwrap();
        assert_eq!(v[0], Value::Real(0.5));
    }

    #[test]
    fn json_record_rejections() {
        let schema = schema_from_header("geneA:real\trs1:cat3").unwrap();
        for bad in [
            r#"{"nope": 1}"#,                    // unknown feature
            r#"{"geneA": 1, "geneA": 2}"#,       // duplicate
            r#"{"rs1": 7}"#,                     // code out of range
            r#"{"geneA": [1]}"#,                 // nested value
            r#"{"geneA": 1"#,                    // truncated
            r#"{"geneA": 1} trailing"#,          // trailing bytes
            "not json",
        ] {
            let err = parse_json_record(&schema, bad, 4).unwrap_err();
            match err {
                ParseError::Cell { line: 4, .. } => {}
                e => panic!("{bad}: {e}"),
            }
        }
    }
}
