//! Deterministic splits: the paper's replicate protocol and k-fold CV.
//!
//! Experimental protocol (paper §III-A): each replicate trains on a randomly
//! selected two-thirds of the *normal* samples; the test set is the remaining
//! normal samples plus all anomalous samples. Error models are built by
//! k-fold cross-validation over the training set (§I-A-1).
//!
//! All randomness is seeded; per-item seeds are derived with SplitMix64 so
//! results are independent of thread scheduling.

use rand::prelude::*;
use rand::rngs::StdRng;

/// SplitMix64 output function: a high-quality 64-bit mixer used to derive
/// independent sub-seeds from `(seed, index)` pairs.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Derive an independent sub-seed from a base seed and an item index.
/// Used everywhere a parallel loop needs per-item determinism.
#[inline]
pub fn derive_seed(seed: u64, index: u64) -> u64 {
    splitmix64(seed ^ splitmix64(index.wrapping_add(0xA5A5_5A5A_DEAD_BEEF)))
}

/// A seeded Fisher–Yates permutation of `0..n`.
pub fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    idx
}

/// A train/test split of row indices `0..n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrainTestSplit {
    /// Training row indices.
    pub train: Vec<usize>,
    /// Held-out row indices.
    pub test: Vec<usize>,
}

/// Split `0..n` into a training fraction and the remainder, after a seeded
/// shuffle. `train_fraction` is clamped to `[0, 1]`; the training set size is
/// `round(n · fraction)` but at least 1 and at most `n − 1` when `n ≥ 2`, so
/// neither side is empty unless `n < 2`.
pub fn train_test_split(n: usize, train_fraction: f64, seed: u64) -> TrainTestSplit {
    let idx = permutation(n, seed);
    let f = train_fraction.clamp(0.0, 1.0);
    let mut k = (n as f64 * f).round() as usize;
    if n >= 2 {
        k = k.clamp(1, n - 1);
    } else {
        k = k.min(n);
    }
    TrainTestSplit { train: idx[..k].to_vec(), test: idx[k..].to_vec() }
}

/// The paper's replicate split: two-thirds of the rows for training.
pub fn replicate_split(n_normal: usize, replicate: usize, seed: u64) -> TrainTestSplit {
    train_test_split(n_normal, 2.0 / 3.0, derive_seed(seed, replicate as u64))
}

/// One fold of a k-fold partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fold {
    /// Rows used to train in this fold.
    pub train: Vec<usize>,
    /// Held-out rows whose predictions feed the error model.
    pub holdout: Vec<usize>,
}

/// A seeded k-fold partition of `0..n`.
///
/// Folds are as equal as possible (sizes differ by at most one); every index
/// appears in exactly one holdout. If `k > n`, the fold count is reduced to
/// `n` so no fold is empty; if `n < 2` or `k < 2` a single degenerate fold is
/// returned with all rows in both sides (the caller effectively trains and
/// evaluates on the same data — the best available at such tiny sizes).
pub fn k_fold(n: usize, k: usize, seed: u64) -> Vec<Fold> {
    if n < 2 || k < 2 {
        let all: Vec<usize> = (0..n).collect();
        return vec![Fold { train: all.clone(), holdout: all }];
    }
    let k = k.min(n);
    let idx = permutation(n, seed);
    let mut folds = Vec::with_capacity(k);
    let base = n / k;
    let extra = n % k;
    let mut start = 0usize;
    for f in 0..k {
        let size = base + usize::from(f < extra);
        let holdout: Vec<usize> = idx[start..start + size].to_vec();
        let train: Vec<usize> = idx[..start]
            .iter()
            .chain(&idx[start + size..])
            .copied()
            .collect();
        folds.push(Fold { train, holdout });
        start += size;
    }
    folds
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn splitmix_and_derive_are_deterministic_and_spread() {
        assert_eq!(splitmix64(42), splitmix64(42));
        assert_ne!(splitmix64(42), splitmix64(43));
        let seeds: HashSet<u64> = (0..1000).map(|i| derive_seed(7, i)).collect();
        assert_eq!(seeds.len(), 1000, "derived seeds must not collide trivially");
    }

    #[test]
    fn permutation_is_a_permutation() {
        let p = permutation(100, 3);
        let set: HashSet<usize> = p.iter().copied().collect();
        assert_eq!(set.len(), 100);
        assert_eq!(p, permutation(100, 3));
        assert_ne!(p, permutation(100, 4));
    }

    #[test]
    fn train_test_split_partitions() {
        let s = train_test_split(30, 2.0 / 3.0, 9);
        assert_eq!(s.train.len(), 20);
        assert_eq!(s.test.len(), 10);
        let mut all: Vec<usize> = s.train.iter().chain(&s.test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..30).collect::<Vec<_>>());
    }

    #[test]
    fn split_never_empties_either_side() {
        for n in 2..10 {
            for &f in &[0.0, 0.01, 0.5, 0.99, 1.0] {
                let s = train_test_split(n, f, 1);
                assert!(!s.train.is_empty(), "n={n} f={f}");
                assert!(!s.test.is_empty(), "n={n} f={f}");
            }
        }
    }

    #[test]
    fn replicates_differ_but_are_reproducible() {
        let a = replicate_split(60, 0, 5);
        let b = replicate_split(60, 1, 5);
        assert_ne!(a, b);
        assert_eq!(a, replicate_split(60, 0, 5));
        assert_eq!(a.train.len(), 40, "two-thirds of 60");
    }

    #[test]
    fn k_fold_covers_each_index_once() {
        let folds = k_fold(23, 5, 11);
        assert_eq!(folds.len(), 5);
        let mut holdouts: Vec<usize> = folds.iter().flat_map(|f| f.holdout.clone()).collect();
        holdouts.sort_unstable();
        assert_eq!(holdouts, (0..23).collect::<Vec<_>>());
        for fold in &folds {
            assert_eq!(fold.train.len() + fold.holdout.len(), 23);
            let train: HashSet<_> = fold.train.iter().collect();
            assert!(fold.holdout.iter().all(|i| !train.contains(i)));
        }
    }

    #[test]
    fn k_fold_sizes_balanced() {
        let folds = k_fold(10, 4, 2);
        let sizes: Vec<usize> = folds.iter().map(|f| f.holdout.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 2 || s == 3));
    }

    #[test]
    fn k_fold_clamps_k_to_n() {
        let folds = k_fold(3, 10, 0);
        assert_eq!(folds.len(), 3);
        assert!(folds.iter().all(|f| f.holdout.len() == 1 && f.train.len() == 2));
    }

    #[test]
    fn k_fold_degenerate_small_n() {
        let folds = k_fold(1, 5, 0);
        assert_eq!(folds.len(), 1);
        assert_eq!(folds[0].train, vec![0]);
        assert_eq!(folds[0].holdout, vec![0]);
    }
}
