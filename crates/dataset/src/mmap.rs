//! Read-only memory-mapped files for the out-of-core dataset path.
//!
//! This is the workspace's second (and deliberately small) `unsafe` module,
//! under the same `#![deny(unsafe_op_in_unsafe_fn)]` discipline as
//! [`crate::kernels`]: every `unsafe` block is local, commented, and guards
//! exactly one invariant. Like `frac-cli`'s signal hookup, it carries no
//! `libc`-style dependency — on 64-bit Unix the two C entry points it needs
//! (`mmap(2)` / `munmap(2)`) are declared directly, because the process is
//! already linked against libc through `std`. Everywhere else (non-Unix, or
//! 32-bit targets where the un-declared `off_t` width would be an ABI guess)
//! [`MmapFile::open`] transparently falls back to reading the file into an
//! owned buffer: same API, same bytes, no mapping.
//!
//! # Safety model
//!
//! A mapping is created once, read-only (`PROT_READ`), page-aligned by the
//! kernel, and unmapped exactly once on drop. The byte slice handed out by
//! [`MmapFile::as_bytes`] borrows the `MmapFile`, so Rust's lifetimes keep
//! it from out-living the mapping; shared ownership across columns is done
//! with `Arc<MmapFile>` at the caller. The one hazard the type system
//! cannot exclude is *external file truncation while mapped* (a concurrent
//! writer shrinking the file makes touched pages fault with `SIGBUS`). The
//! FCB format is written atomically (tmp + fsync + rename) and never
//! modified in place, so a mapped `.fcb` file only disappears by rename —
//! which keeps the old inode (and every mapped page) alive until unmap.
//! See `FORMATS.md` § FCB for the normative statement.
//!
//! Typed reinterpretation ([`MmapFile::slice_f64`] / [`MmapFile::slice_u32`])
//! is bounds- and alignment-checked at every call; `f64`/`u32` have no
//! invalid bit patterns, so a checked cast from initialized bytes is sound.

#![deny(unsafe_op_in_unsafe_fn)]

use std::fs::File;
use std::io;
use std::path::Path;

/// True when this build uses a real `mmap(2)` mapping; false when
/// [`MmapFile::open`] falls back to an owned in-memory copy.
pub const MMAP_BACKED: bool = cfg!(all(unix, target_pointer_width = "64"));

#[cfg(all(unix, target_pointer_width = "64"))]
mod sys {
    use std::ffi::c_void;

    /// `PROT_READ` — identical on Linux and the BSDs/macOS.
    pub const PROT_READ: i32 = 1;
    /// `MAP_SHARED` — identical on Linux and the BSDs/macOS. Read-only
    /// shared mappings let every worker process mapping one FCB file share
    /// the same page-cache pages.
    pub const MAP_SHARED: i32 = 1;
    /// `mmap`'s failure sentinel (`(void *)-1`).
    pub const MAP_FAILED: usize = usize::MAX;

    extern "C" {
        /// POSIX `mmap(2)`. Declared with a 64-bit offset, which matches
        /// `off_t` on every 64-bit Unix this gate admits.
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        /// POSIX `munmap(2)`.
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

/// A whole file, either memory-mapped read-only (64-bit Unix) or read into
/// an owned buffer (everywhere else). Dropping unmaps / frees.
#[derive(Debug)]
pub struct MmapFile {
    repr: Repr,
}

#[derive(Debug)]
enum Repr {
    #[cfg(all(unix, target_pointer_width = "64"))]
    Mapped {
        /// Base address of the mapping; never null, page-aligned.
        ptr: *const u8,
        len: usize,
    },
    Owned(Vec<u8>),
}

// SAFETY: the mapping is immutable for the life of the value (PROT_READ,
// file never modified in place per the FCB write protocol) and carries no
// interior mutability, so shared references may cross threads freely.
unsafe impl Send for MmapFile {}
// SAFETY: as above — &MmapFile only permits reads of immutable memory.
unsafe impl Sync for MmapFile {}

impl MmapFile {
    /// Map `path` read-only (or read it into memory on fallback targets).
    ///
    /// Empty files yield an empty, mapping-free `MmapFile`. Errors are the
    /// underlying `open`/`stat`/`mmap` failures.
    pub fn open(path: impl AsRef<Path>) -> io::Result<MmapFile> {
        let path = path.as_ref();
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: file too large to map", path.display()),
            ));
        }
        let len = len as usize;
        if len == 0 {
            return Ok(MmapFile { repr: Repr::Owned(Vec::new()) });
        }
        #[cfg(all(unix, target_pointer_width = "64"))]
        {
            use std::os::unix::io::AsRawFd as _;
            // SAFETY: `fd` is a live descriptor borrowed from `file` for the
            // duration of the call; a read-only MAP_SHARED mapping of it is
            // valid regardless of when the descriptor is later closed (POSIX
            // keeps the mapping alive independently of the fd). All other
            // arguments are plain values. The result is checked below.
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_SHARED,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as usize == sys::MAP_FAILED {
                return Err(io::Error::other(format!("{}: mmap failed", path.display())));
            }
            Ok(MmapFile { repr: Repr::Mapped { ptr: ptr as *const u8, len } })
        }
        #[cfg(not(all(unix, target_pointer_width = "64")))]
        {
            use std::io::Read as _;
            let mut file = file;
            let mut data = Vec::with_capacity(len);
            file.read_to_end(&mut data)?;
            Ok(MmapFile { repr: Repr::Owned(data) })
        }
    }

    /// Total length in bytes.
    pub fn len(&self) -> usize {
        match &self.repr {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Repr::Mapped { len, .. } => *len,
            Repr::Owned(v) => v.len(),
        }
    }

    /// True when the file was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The whole file as a byte slice.
    pub fn as_bytes(&self) -> &[u8] {
        match &self.repr {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Repr::Mapped { ptr, len } => {
                // SAFETY: `ptr` is the non-null base of a live PROT_READ
                // mapping of exactly `len` bytes (established in `open`,
                // torn down only in `drop`); the returned slice borrows
                // `self`, so it cannot out-live the mapping.
                unsafe { std::slice::from_raw_parts(*ptr, *len) }
            }
            Repr::Owned(v) => v,
        }
    }

    /// `count` little-endian `f64`s starting at `byte_off`, zero-copy.
    ///
    /// Returns `None` if the range is out of bounds or `byte_off` is not
    /// 8-byte aligned (the FCB layout aligns every extent, so a `None` here
    /// means a corrupt or foreign file, never a valid one).
    pub fn slice_f64(&self, byte_off: usize, count: usize) -> Option<&[f64]> {
        let bytes = self.range(byte_off, count.checked_mul(8)?)?;
        if !(bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<f64>()) {
            return None;
        }
        // SAFETY: the range is in bounds (checked by `range`), properly
        // aligned (checked above), and `f64` accepts every bit pattern.
        // Endianness: FCB is defined little-endian and this workspace only
        // targets little-endian hosts; the const assertion pins it.
        const { assert!(cfg!(target_endian = "little"), "FCB mapping requires little-endian") };
        Some(unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const f64, count) })
    }

    /// `count` little-endian `u32`s starting at `byte_off`, zero-copy.
    ///
    /// Same bounds/alignment contract as [`MmapFile::slice_f64`].
    pub fn slice_u32(&self, byte_off: usize, count: usize) -> Option<&[u32]> {
        let bytes = self.range(byte_off, count.checked_mul(4)?)?;
        if !(bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<u32>()) {
            return None;
        }
        // SAFETY: in bounds, aligned, and `u32` accepts every bit pattern
        // (little-endian host, pinned by the const assertion above).
        const { assert!(cfg!(target_endian = "little"), "FCB mapping requires little-endian") };
        Some(unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const u32, count) })
    }

    /// Byte subrange helper with overflow-safe bounds checking.
    fn range(&self, off: usize, len: usize) -> Option<&[u8]> {
        let end = off.checked_add(len)?;
        self.as_bytes().get(off..end)
    }
}

impl Drop for MmapFile {
    fn drop(&mut self) {
        #[cfg(all(unix, target_pointer_width = "64"))]
        if let Repr::Mapped { ptr, len } = self.repr {
            // SAFETY: `ptr`/`len` describe exactly the mapping created in
            // `open`; it is unmapped exactly once (drop runs once) and no
            // slice into it can still be live (they all borrow `self`).
            // munmap failure on a valid mapping is not actionable in drop.
            unsafe {
                let _ = sys::munmap(ptr as *mut std::ffi::c_void, len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    fn tmp(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("frac-mmap-{}-{name}", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(bytes).unwrap();
        path
    }

    #[test]
    fn maps_and_reads_whole_file() {
        let path = tmp("whole", b"hello mapped world");
        let map = MmapFile::open(&path).unwrap();
        assert_eq!(map.len(), 18);
        assert_eq!(map.as_bytes(), b"hello mapped world");
        drop(map);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_maps_empty() {
        let path = tmp("empty", b"");
        let map = MmapFile::open(&path).unwrap();
        assert!(map.is_empty());
        assert_eq!(map.as_bytes(), b"");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn typed_slices_roundtrip_and_check_bounds() {
        let mut bytes = Vec::new();
        for x in [1.5f64, -2.25, 0.0] {
            bytes.extend_from_slice(&x.to_le_bytes());
        }
        for c in [7u32, u32::MAX] {
            bytes.extend_from_slice(&c.to_le_bytes());
        }
        let path = tmp("typed", &bytes);
        let map = MmapFile::open(&path).unwrap();
        assert_eq!(map.slice_f64(0, 3).unwrap(), &[1.5, -2.25, 0.0]);
        assert_eq!(map.slice_u32(24, 2).unwrap(), &[7, u32::MAX]);
        // Out of bounds and misaligned reads must both refuse.
        assert!(map.slice_f64(0, 5).is_none());
        assert!(map.slice_f64(4, 1).is_none(), "misaligned f64 offset");
        assert!(map.slice_u32(2, 1).is_none(), "misaligned u32 offset");
        assert!(map.slice_u32(usize::MAX - 2, 1).is_none(), "overflowing range");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapping_survives_rename_semantics() {
        // The FCB write protocol replaces files only via rename; a mapping
        // taken before the rename must keep seeing the old bytes.
        let path = tmp("rename", b"old contents");
        let map = MmapFile::open(&path).unwrap();
        let replacement = tmp("rename-new", b"new contents");
        std::fs::rename(&replacement, &path).unwrap();
        assert_eq!(map.as_bytes(), b"old contents");
        drop(map);
        std::fs::remove_file(&path).ok();
    }
}
