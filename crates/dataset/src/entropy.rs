//! Per-feature entropy estimation.
//!
//! Entropy plays two roles in the paper:
//!
//! 1. The `H(f_i)` term of normalized surprisal — each feature's surprisal is
//!    centred by its training-set entropy so that an unsurprising value of a
//!    predictable feature contributes ≈ 0.
//! 2. The ranking criterion of the *entropy filtering* selector (§II-A):
//!    features are ranked by information content and only the top `p` are
//!    kept.
//!
//! For nominal features with values `v_1..v_k` the paper uses the plug-in
//! estimate `Σ −pr(v) log pr(v)` with probabilities from training-set
//! frequencies. For continuous features it fits a Gaussian KDE and takes the
//! differential entropy of the fitted density. All entropies are in nats.

use crate::dataset::{Column, Dataset, MISSING_CODE};
use crate::kde::GaussianKde;

/// Plug-in Shannon entropy (nats) of categorical codes, ignoring missing
/// values. Returns 0.0 when no values are present.
pub fn categorical_entropy(codes: &[u32], arity: u32) -> f64 {
    let mut counts = vec![0usize; arity as usize];
    let mut n = 0usize;
    for &c in codes {
        if c != MISSING_CODE {
            counts[c as usize] += 1;
            n += 1;
        }
    }
    if n == 0 {
        return 0.0;
    }
    let n = n as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.ln()
        })
        .sum()
}

/// Empirical category probabilities (ignoring missing values), uniform when
/// no values are present.
pub fn categorical_probs(codes: &[u32], arity: u32) -> Vec<f64> {
    let mut counts = vec![0usize; arity as usize];
    let mut n = 0usize;
    for &c in codes {
        if c != MISSING_CODE {
            counts[c as usize] += 1;
            n += 1;
        }
    }
    if n == 0 {
        return vec![1.0 / arity as f64; arity as usize];
    }
    counts.iter().map(|&c| c as f64 / n as f64).collect()
}

/// Differential entropy (nats) of real values via Gaussian-KDE
/// resubstitution, ignoring NaNs. Returns a very low value for constant or
/// empty features so they rank last under entropy filtering.
pub fn differential_entropy(values: &[f64]) -> f64 {
    let present: Vec<f64> = values.iter().copied().filter(|x| !x.is_nan()).collect();
    if present.is_empty() {
        return f64::NEG_INFINITY;
    }
    GaussianKde::fit(&present).resubstitution_entropy()
}

/// Entropy of one column, dispatching on its kind: plug-in entropy for
/// categorical, KDE differential entropy for real.
pub fn column_entropy(column: &Column) -> f64 {
    match column {
        Column::Real(v) => differential_entropy(v),
        Column::Categorical { arity, codes } => categorical_entropy(codes, *arity),
    }
}

/// Entropy of every feature of a data set, in feature order.
pub fn feature_entropies(data: &Dataset) -> Vec<f64> {
    (0..data.n_features())
        .map(|j| column_entropy(data.column(j)))
        .collect()
}

/// Indices of all features ranked by *descending* entropy — the ordering the
/// paper's entropy filter keeps the prefix of. Ties broken by feature index
/// for determinism; non-finite entropies sort last.
pub fn rank_by_entropy(data: &Dataset) -> Vec<usize> {
    let ent = feature_entropies(data);
    let mut idx: Vec<usize> = (0..ent.len()).collect();
    idx.sort_by(|&a, &b| {
        let (ea, eb) = (ent[a], ent[b]);
        match (ea.is_finite(), eb.is_finite()) {
            (true, true) => eb.total_cmp(&ea).then(a.cmp(&b)),
            (true, false) => std::cmp::Ordering::Less,
            (false, true) => std::cmp::Ordering::Greater,
            (false, false) => a.cmp(&b),
        }
    });
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;

    #[test]
    fn uniform_categorical_is_log_k() {
        let codes = vec![0, 1, 2, 0, 1, 2];
        let h = categorical_entropy(&codes, 3);
        assert!((h - 3.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn deterministic_categorical_is_zero() {
        assert_eq!(categorical_entropy(&[1, 1, 1, 1], 3), 0.0);
    }

    #[test]
    fn missing_codes_ignored() {
        let h_with = categorical_entropy(&[0, 1, MISSING_CODE, MISSING_CODE], 2);
        let h_without = categorical_entropy(&[0, 1], 2);
        assert!((h_with - h_without).abs() < 1e-12);
    }

    #[test]
    fn all_missing_entropy_is_zero() {
        assert_eq!(categorical_entropy(&[MISSING_CODE; 4], 3), 0.0);
    }

    #[test]
    fn probs_sum_to_one() {
        let p = categorical_probs(&[0, 0, 1, 2], 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(p[0], 0.5);
        let uniform = categorical_probs(&[MISSING_CODE], 4);
        assert_eq!(uniform, vec![0.25; 4]);
    }

    #[test]
    fn binary_entropy_skewed_below_uniform() {
        let skew = categorical_entropy(&[0, 0, 0, 1], 2);
        let unif = categorical_entropy(&[0, 0, 1, 1], 2);
        assert!(skew < unif);
        assert!((unif - 2.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn differential_entropy_ignores_nans() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64 * 0.1).collect();
        let mut with_nan = xs.clone();
        with_nan.push(f64::NAN);
        assert!((differential_entropy(&xs) - differential_entropy(&with_nan)).abs() < 1e-12);
    }

    #[test]
    fn empty_real_feature_is_neg_infinite() {
        assert_eq!(differential_entropy(&[f64::NAN, f64::NAN]), f64::NEG_INFINITY);
    }

    #[test]
    fn rank_by_entropy_orders_features() {
        // Feature 0: constant (lowest). Feature 1: wide spread (highest).
        // Feature 2: uniform ternary. Feature 3: deterministic ternary.
        let d = DatasetBuilder::new()
            .real("const", vec![1.0; 9])
            .real(
                "wide",
                vec![-40.0, -30.0, -20.0, -10.0, 0.0, 10.0, 20.0, 30.0, 40.0],
            )
            .categorical("unif", 3, vec![0, 1, 2, 0, 1, 2, 0, 1, 2])
            .categorical("det", 3, vec![1; 9])
            .build();
        let rank = rank_by_entropy(&d);
        assert_eq!(rank[0], 1, "wide real feature must rank first: {rank:?}");
        // The constant real feature has very negative differential entropy
        // and must rank below the deterministic categorical (entropy 0).
        let pos_const = rank.iter().position(|&i| i == 0).unwrap();
        let pos_det = rank.iter().position(|&i| i == 3).unwrap();
        assert!(pos_det < pos_const, "rank: {rank:?}");
    }

    #[test]
    fn feature_entropies_matches_columns() {
        let d = DatasetBuilder::new()
            .categorical("a", 2, vec![0, 1, 0, 1])
            .categorical("b", 2, vec![0, 0, 0, 0])
            .build();
        let e = feature_entropies(&d);
        assert!((e[0] - 2.0f64.ln()).abs() < 1e-12);
        assert_eq!(e[1], 0.0);
    }
}
