//! # frac-dataset
//!
//! Dataset substrate for the FRaC anomaly-detection family (Cousins, Pietras,
//! Slonim — *Scalable FRaC Variants*, IPPS 2017).
//!
//! FRaC operates on data that is "real, categorical, or mixed" with possibly
//! missing entries. This crate provides:
//!
//! * [`Schema`] / [`FeatureKind`] — typed feature descriptions (real-valued
//!   expression levels, k-ary categorical SNP genotypes, …).
//! * [`Dataset`] — column-major mixed storage with missing-value support.
//! * [`DesignMatrix`] — a row-major, all-real view used to train predictors
//!   for one target feature from a chosen subset of the remaining features
//!   (categorical inputs are one-hot expanded, exactly the encoding of the
//!   paper's Fig. 2).
//! * [`entropy`] — plug-in entropy for categorical features and Gaussian-KDE
//!   differential entropy for real features (the quantities the paper's
//!   entropy-filtering selector ranks by, and the `H(f_i)` term of the
//!   normalized-surprisal score).
//! * [`split`] — deterministic shuffles, train/test splits and k-fold
//!   partitions implementing the paper's replicate protocol.
//! * [`io`] — a simple TSV interchange format with a typed header.
//! * [`fcb`] — FCB, the binary column-major on-disk dataset format
//!   (checksummed extents, mmap-loaded into zero-copy [`Dataset`] columns,
//!   chunked bounded-memory encode); see `FORMATS.md` for the byte layout.
//! * [`mmap`] — the read-only memory-map wrapper FCB loads through.
//! * [`quarantine`] — degenerate-input screening (NaN/Inf cells,
//!   zero-variance columns, single-class categoricals, all-missing targets)
//!   and cell sanitization, run before anything reaches a solver.
//! * [`crc`] — CRC-32 / FNV-1a checksums for durable on-disk artifacts
//!   (model files, run journals) and content fingerprints.
//! * [`stats`] — small numeric helpers shared across the workspace.
//!
//! Everything stochastic takes an explicit seed; nothing here depends on
//! global RNG state.

#![warn(missing_docs)]

pub mod crc;
pub mod dataset;
pub mod design;
pub mod entropy;
pub mod fcb;
pub mod io;
pub mod kde;
pub mod kernels;
pub mod mmap;
pub mod quarantine;
pub mod schema;
pub mod split;
pub mod stats;
pub mod textio;

pub use dataset::{ColStore, Column, Dataset, Value};
pub use fcb::{FcbError, FcbFile, FcbInfo, FcbWriter};
pub use mmap::MmapFile;
pub use design::{
    ColRef, DesignMatrix, DesignView, EncodedPool, PackedDesign, PoolSpec, PoolView, RowSubset,
};
pub use kde::GaussianKde;
pub use quarantine::{FeatureScreen, QuarantineReason, ScreenReport};
pub use schema::{Feature, FeatureKind, Schema};
