//! Property-based corruption tests for the FCB on-disk format: however a
//! file is damaged — truncated at an arbitrary byte, a bit flipped at an
//! arbitrary position, foreign bytes — `FcbFile::open` must reject it with
//! an error (never panic, never return data from a damaged file). A clean
//! round trip must always validate and reproduce the source bit for bit.

use frac_dataset::dataset::{DatasetBuilder, MISSING_CODE};
use frac_dataset::fcb::{pack_dataset_chunked, FcbFile};
use frac_dataset::Dataset;
use proptest::prelude::*;
use std::path::PathBuf;

/// A small mixed dataset with missing values in both kinds of column,
/// deterministically derived from `seed` so every proptest case packs a
/// different file.
fn mixed_dataset(seed: u64, n_rows: usize) -> Dataset {
    let mut x = seed | 1;
    let mut next = move || {
        // xorshift64* — cheap deterministic stream, no RNG dependency.
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    let reals: Vec<f64> = (0..n_rows)
        .map(|_| {
            let v = next();
            if v % 11 == 0 {
                f64::NAN
            } else {
                (v % 10_000) as f64 / 100.0 - 50.0
            }
        })
        .collect();
    let codes: Vec<u32> = (0..n_rows)
        .map(|_| {
            let v = next();
            if v % 13 == 0 {
                MISSING_CODE
            } else {
                (v % 4) as u32
            }
        })
        .collect();
    let reals2: Vec<f64> = (0..n_rows).map(|_| (next() % 1000) as f64 * 0.25).collect();
    DatasetBuilder::new()
        .real("expr", reals)
        .categorical("snp", 4, codes)
        .real("level", reals2)
        .build()
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("frac-fcb-prop-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Truncating a valid file at any offset must yield an error, never a
    /// panic and never a successfully "loaded" prefix.
    #[test]
    fn truncation_at_any_offset_is_rejected(
        seed in any::<u64>(),
        n_rows in 1usize..40,
        cut_frac in 0.0f64..1.0,
    ) {
        let data = mixed_dataset(seed, n_rows);
        let path = scratch(&format!("trunc-{seed}-{n_rows}.fcb"));
        pack_dataset_chunked(&data, &path, 8).unwrap();
        let clean = std::fs::read(&path).unwrap();
        let cut = ((clean.len() as f64 * cut_frac) as usize).min(clean.len() - 1);
        std::fs::write(&path, &clean[..cut]).unwrap();
        prop_assert!(
            FcbFile::open(&path).is_err(),
            "truncation to {cut} of {} bytes must be rejected",
            clean.len()
        );
        std::fs::remove_file(&path).ok();
    }

    /// Flipping any single bit must be caught by the header, extent, or
    /// whole-file CRC (or by a structural check) — an error, never a panic.
    #[test]
    fn bit_flip_at_any_position_is_rejected(
        seed in any::<u64>(),
        n_rows in 1usize..40,
        pos_frac in 0.0f64..1.0,
        bit in 0u32..8,
    ) {
        let data = mixed_dataset(seed, n_rows);
        let path = scratch(&format!("flip-{seed}-{n_rows}.fcb"));
        pack_dataset_chunked(&data, &path, 8).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let pos = ((bytes.len() as f64 * pos_frac) as usize).min(bytes.len() - 1);
        bytes[pos] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();
        prop_assert!(
            FcbFile::open(&path).is_err(),
            "flipping bit {bit} of byte {pos} must be rejected"
        );
        std::fs::remove_file(&path).ok();
    }

    /// Arbitrary foreign bytes never load (and never panic), whatever
    /// their length — including lengths that resemble a real header.
    #[test]
    fn arbitrary_bytes_never_load(
        words in prop::collection::vec(0u32..256, 0..256),
    ) {
        let bytes: Vec<u8> = words.iter().map(|&w| w as u8).collect();
        let path = scratch("foreign.fcb");
        std::fs::write(&path, &bytes).unwrap();
        prop_assert!(FcbFile::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    /// Clean round trip: always validates, always bit-identical content,
    /// at every chunk size.
    #[test]
    fn clean_roundtrip_is_bit_exact(
        seed in any::<u64>(),
        n_rows in 1usize..60,
        chunk in 1usize..32,
    ) {
        let data = mixed_dataset(seed, n_rows);
        let path = scratch(&format!("clean-{seed}-{n_rows}-{chunk}.fcb"));
        pack_dataset_chunked(&data, &path, chunk).unwrap();
        let loaded = FcbFile::open(&path).unwrap();
        prop_assert_eq!(loaded.n_rows(), n_rows);
        prop_assert_eq!(loaded.dataset().fingerprint(), data.fingerprint());
        std::fs::remove_file(&path).ok();
    }
}
