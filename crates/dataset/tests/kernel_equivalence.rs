//! Property-based equivalence of the blocked/vectorized kernel tiers with
//! the exact sequential folds.
//!
//! Every supported tier is exercised through its per-tier entry point on
//! arbitrary lengths — including the remainder tails 1–7 that the 8-wide
//! AVX2 loop hands to scalar code — against three contracts:
//!
//! * `dot` / `sq_norm`: reassociated (and on AVX2, FMA-fused) reductions,
//!   within 1e-10 relative tolerance of the sequential fold;
//! * `axpy`: bit-identical on every tier (each lane performs the same
//!   multiply-then-add double rounding as the scalar loop);
//! * `dot_f32`: products rounded through f32, accumulated in f64, within
//!   the documented `4·ε_f32·Σ|xᵢwᵢ|` error model.

use frac_dataset::kernels::{
    axpy_for_tier, dot_f32_for_tier, dot_for_tier, sq_norm_for_tier, KernelTier,
};
use proptest::prelude::*;

const MAX_LEN: usize = 160;

fn supported_tiers() -> Vec<KernelTier> {
    [KernelTier::Unrolled, KernelTier::Avx2Fma]
        .into_iter()
        .filter(|t| t.supported())
        .collect()
}

/// The exact kernel: a left-to-right sequential fold from `init`.
fn seq_dot(xs: &[f64], ws: &[f64], init: f64) -> f64 {
    xs.iter().zip(ws).fold(init, |acc, (&x, &w)| acc + x * w)
}

fn seq_sq_norm(xs: &[f64], init: f64) -> f64 {
    xs.iter().fold(init, |acc, &x| acc + x * x)
}

/// Lengths biased toward the interesting cases: empty, the 1–7 scalar
/// tails of every block size, exact block multiples, and bigger slices.
fn len_strategy() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(0usize),
        1usize..8,
        Just(8usize),
        Just(16usize),
        Just(64usize),
        9usize..MAX_LEN,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dot_matches_sequential_fold_on_every_tier(
        len in len_strategy(),
        xs in prop::collection::vec(-100.0f64..100.0, MAX_LEN),
        ws in prop::collection::vec(-100.0f64..100.0, MAX_LEN),
        init in -10.0f64..10.0,
    ) {
        let (xs, ws) = (&xs[..len], &ws[..len]);
        let reference = seq_dot(xs, ws, init);
        let scale = xs
            .iter()
            .zip(ws)
            .fold(init.abs(), |acc, (&x, &w)| acc + (x * w).abs());
        for tier in supported_tiers() {
            let got = dot_for_tier(tier, xs, ws, init);
            prop_assert!(
                (got - reference).abs() <= 1e-10 * (1.0 + scale),
                "{tier} dot len={len}: {got} vs {reference}"
            );
        }
    }

    #[test]
    fn sq_norm_matches_sequential_fold_on_every_tier(
        len in len_strategy(),
        xs in prop::collection::vec(-100.0f64..100.0, MAX_LEN),
        init in 0.0f64..10.0,
    ) {
        let xs = &xs[..len];
        let reference = seq_sq_norm(xs, init);
        for tier in supported_tiers() {
            let got = sq_norm_for_tier(tier, xs, init);
            prop_assert!(
                (got - reference).abs() <= 1e-10 * (1.0 + reference.abs()),
                "{tier} sq_norm len={len}: {got} vs {reference}"
            );
        }
    }

    #[test]
    fn axpy_is_bit_identical_on_every_tier(
        len in len_strategy(),
        xs in prop::collection::vec(-100.0f64..100.0, MAX_LEN),
        ws in prop::collection::vec(-100.0f64..100.0, MAX_LEN),
        alpha in -5.0f64..5.0,
    ) {
        let xs = &xs[..len];
        let mut reference = ws[..len].to_vec();
        for (w, &x) in reference.iter_mut().zip(xs) {
            *w += alpha * x;
        }
        for tier in supported_tiers() {
            let mut got = ws[..len].to_vec();
            axpy_for_tier(tier, alpha, xs, &mut got);
            for (i, (g, r)) in got.iter().zip(&reference).enumerate() {
                prop_assert_eq!(
                    g.to_bits(),
                    r.to_bits(),
                    "{} axpy len={} lane {}: {} vs {}",
                    tier, len, i, g, r
                );
            }
        }
    }

    #[test]
    fn dot_f32_stays_inside_documented_error_model(
        len in len_strategy(),
        xs in prop::collection::vec(-100.0f64..100.0, MAX_LEN),
        ws in prop::collection::vec(-100.0f64..100.0, MAX_LEN),
        init in -10.0f64..10.0,
    ) {
        let (xs, ws) = (&xs[..len], &ws[..len]);
        let reference = seq_dot(xs, ws, init);
        let scale: f64 = xs.iter().zip(ws).map(|(&x, &w)| (x * w).abs()).sum();
        let bound = 4.0 * f64::from(f32::EPSILON) * scale + 1e-12;
        for tier in supported_tiers() {
            let got = dot_f32_for_tier(tier, xs, ws, init);
            prop_assert!(
                (got - reference).abs() <= bound,
                "{tier} dot_f32 len={len}: {got} vs {reference} (bound {bound})"
            );
        }
    }
}
