//! Property-based tests of dataset-substrate invariants: entropy axioms,
//! design-matrix encoding, KDE normalization.

use frac_dataset::dataset::{Column, Dataset, DatasetBuilder, MISSING_CODE};
use frac_dataset::design::DesignSpec;
use frac_dataset::entropy::{categorical_entropy, categorical_probs};
use frac_dataset::io::{from_tsv, to_tsv};
use frac_dataset::kde::GaussianKde;
use frac_dataset::stats;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn categorical_entropy_bounded_by_log_arity(
        codes in prop::collection::vec(0u32..5, 1..80),
    ) {
        let h = categorical_entropy(&codes, 5);
        prop_assert!(h >= 0.0);
        prop_assert!(h <= 5.0f64.ln() + 1e-12);
    }

    #[test]
    fn entropy_invariant_under_permutation(
        mut codes in prop::collection::vec(0u32..4, 2..60),
    ) {
        let h1 = categorical_entropy(&codes, 4);
        codes.reverse();
        let h2 = categorical_entropy(&codes, 4);
        prop_assert!((h1 - h2).abs() < 1e-12);
    }

    #[test]
    fn entropy_invariant_under_relabeling(
        codes in prop::collection::vec(0u32..3, 2..60),
    ) {
        // Swapping category labels 0 ↔ 2 cannot change entropy.
        let swapped: Vec<u32> = codes.iter().map(|&c| match c {
            0 => 2,
            2 => 0,
            x => x,
        }).collect();
        prop_assert!(
            (categorical_entropy(&codes, 3) - categorical_entropy(&swapped, 3)).abs() < 1e-12
        );
    }

    #[test]
    fn probs_form_a_distribution(
        codes in prop::collection::vec(0u32..4, 0..60),
    ) {
        let p = categorical_probs(&codes, 4);
        prop_assert_eq!(p.len(), 4);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn duplicating_samples_preserves_entropy(
        codes in prop::collection::vec(0u32..3, 1..40),
    ) {
        // Entropy is a function of frequencies, so doubling the data set
        // changes nothing.
        let mut doubled = codes.clone();
        doubled.extend_from_slice(&codes);
        prop_assert!(
            (categorical_entropy(&codes, 3) - categorical_entropy(&doubled, 3)).abs() < 1e-12
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn design_encoding_shape_and_finiteness(
        reals in prop::collection::vec(-100.0f64..100.0, 4..20),
        codes in prop::collection::vec(0u32..3, 4..20),
        standardize in any::<bool>(),
    ) {
        let n = reals.len().min(codes.len());
        let d = DatasetBuilder::new()
            .real("r", reals[..n].to_vec())
            .categorical("c", 3, codes[..n].to_vec())
            .build();
        let spec = DesignSpec::fit(&d, &[0, 1], standardize);
        prop_assert_eq!(spec.n_cols(), 4);
        let m = spec.encode(&d);
        prop_assert_eq!(m.n_rows(), n);
        for r in 0..n {
            prop_assert!(m.row(r).iter().all(|v| v.is_finite()));
            // Indicator block sums to exactly 1 for present codes.
            let ind: f64 = m.row(r)[1..].iter().sum();
            prop_assert!((ind - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn standardized_columns_have_unit_scale(
        reals in prop::collection::vec(-50.0f64..50.0, 3..30),
    ) {
        let d = DatasetBuilder::new().real("r", reals.clone()).build();
        let spec = DesignSpec::fit(&d, &[0], true);
        let m = spec.encode(&d);
        let col = m.col(0);
        let mean = stats::mean(&col).unwrap();
        prop_assert!(mean.abs() < 1e-9, "mean {mean}");
        if let Some(sd) = stats::std_dev(&reals) {
            if sd > 1e-9 {
                let enc_sd = stats::std_dev(&col).unwrap();
                prop_assert!((enc_sd - 1.0).abs() < 1e-9, "sd {enc_sd}");
            }
        }
    }

    #[test]
    fn feature_selection_commutes_with_row_selection(
        reals in prop::collection::vec(-10f64..10.0, 6..30),
    ) {
        let n = reals.len() / 3;
        let d = DatasetBuilder::new()
            .real("a", reals[..n].to_vec())
            .real("b", reals[n..2 * n].to_vec())
            .real("c", reals[2 * n..3 * n].to_vec())
            .build();
        let rows: Vec<usize> = (0..n).step_by(2).collect();
        let fr = d.select_features(&[2, 0]).select_rows(&rows);
        let rf = d.select_rows(&rows).select_features(&[2, 0]);
        prop_assert_eq!(fr, rf);
    }

    #[test]
    fn kde_log_density_is_log_of_density(
        pts in prop::collection::vec(-20f64..20.0, 2..40),
        probe in -30f64..30.0,
    ) {
        let kde = GaussianKde::fit(&pts);
        let d = kde.density(probe);
        if d > 1e-300 {
            prop_assert!((kde.log_density(probe) - d.ln()).abs() < 1e-6);
        }
    }

    #[test]
    fn from_tsv_never_panics_on_byte_soup(
        raw in prop::collection::vec(0u32..256, 0..400),
    ) {
        // Arbitrary input must parse or report an error — never panic.
        let bytes: Vec<u8> = raw.iter().map(|&b| b as u8).collect();
        let text = String::from_utf8_lossy(&bytes);
        let _ = from_tsv(&text);
    }

    #[test]
    fn from_tsv_never_panics_on_structured_garbage(
        picks in prop::collection::vec(0usize..16, 0..240),
    ) {
        // Near-miss inputs (plausible header fragments, mangled bodies)
        // exercise the parser's deeper paths; they too must fail closed.
        const PIECES: [&str; 16] = [
            "a:real", "b:cat3", ":cat", "x:", "cat99", "\t", "\n", "?",
            "1.5", "-3", "nan", "inf", "2", "real", ":", " ",
        ];
        let text: String = picks.iter().map(|&i| PIECES[i]).collect();
        let _ = from_tsv(&text);
    }

    #[test]
    fn tsv_roundtrip_with_missing_cells(
        reals in prop::collection::vec(
            prop_oneof![Just(f64::NAN), -1e6f64..1e6], 1..30),
        codes in prop::collection::vec(
            prop_oneof![Just(MISSING_CODE), 0u32..4], 1..30),
    ) {
        let n = reals.len().min(codes.len());
        let d = DatasetBuilder::new()
            .real("expr", reals[..n].to_vec())
            .categorical("snp", 4, codes[..n].to_vec())
            .build();
        let back = from_tsv(&to_tsv(&d)).unwrap();
        prop_assert_eq!(back.n_rows(), n);
        let (orig, round) = (d.column(0).as_real().unwrap(), back.column(0).as_real().unwrap());
        for (a, b) in orig.iter().zip(round) {
            prop_assert!(a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan()));
        }
        prop_assert_eq!(d.column(1), back.column(1));
    }

    #[test]
    fn missing_values_roundtrip_through_columns(
        codes in prop::collection::vec(prop_oneof![Just(MISSING_CODE), 0u32..3], 1..30),
    ) {
        let col = Column::Categorical { arity: 3, codes: codes.clone().into() };
        let n_missing = codes.iter().filter(|&&c| c == MISSING_CODE).count();
        prop_assert_eq!(col.n_missing(), n_missing);
        let d = Dataset::new(
            frac_dataset::Schema::all_categorical(1, 3),
            vec![col],
        );
        prop_assert_eq!(d.n_missing(), n_missing);
    }
}
