//! Criterion microbenches for the scoring-side substrate: entropy
//! estimation (the entropy filter's cost), error models, NS scoring of a
//! fitted model, and AUC computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use frac_core::{FracConfig, FracModel, TrainingPlan};
use frac_dataset::entropy::{categorical_entropy, differential_entropy, rank_by_entropy};
use frac_eval::auc::auc_from_scores;
use frac_learn::{ConfusionErrorModel, GaussianErrorModel};
use frac_synth::{ExpressionConfig, ExpressionGenerator};
use std::hint::black_box;

fn gaussianish(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 4.0
        })
        .collect()
}

fn bench_entropy(c: &mut Criterion) {
    let mut group = c.benchmark_group("entropy");
    for &n in &[50usize, 200] {
        let xs = gaussianish(n, 3);
        group.bench_with_input(BenchmarkId::new("differential_kde", n), &(), |b, _| {
            b.iter(|| differential_entropy(black_box(&xs)))
        });
        let codes: Vec<u32> = (0..n).map(|i| (i % 3) as u32).collect();
        group.bench_with_input(BenchmarkId::new("categorical", n), &(), |b, _| {
            b.iter(|| categorical_entropy(black_box(&codes), 3))
        });
    }
    // Full entropy ranking of a 300-feature data set — the selection cost
    // of the entropy filter.
    let g = ExpressionGenerator::new(ExpressionConfig {
        n_features: 300,
        structure_seed: 4,
        ..ExpressionConfig::default()
    });
    let (data, _) = g.generate(60, 0, 1);
    group.sample_size(10);
    group.bench_function("rank_by_entropy_300f", |b| {
        b.iter(|| rank_by_entropy(black_box(&data)))
    });
    group.finish();
}

fn bench_error_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("error_models");
    let pairs: Vec<(f64, f64)> = gaussianish(200, 5)
        .into_iter()
        .zip(gaussianish(200, 6))
        .collect();
    group.bench_function("gaussian_fit_200", |b| {
        b.iter(|| GaussianErrorModel::fit(black_box(&pairs)))
    });
    let gm = GaussianErrorModel::fit(&pairs);
    group.bench_function("gaussian_surprisal", |b| {
        b.iter(|| gm.surprisal(black_box(1.3), black_box(0.2)))
    });
    let cat_pairs: Vec<(u32, u32)> = (0..200).map(|i| ((i % 3) as u32, ((i / 2) % 3) as u32)).collect();
    group.bench_function("confusion_fit_200", |b| {
        b.iter(|| ConfusionErrorModel::fit(black_box(&cat_pairs), 3))
    });
    group.finish();
}

fn bench_ns_scoring(c: &mut Criterion) {
    let mut group = c.benchmark_group("ns_scoring");
    group.sample_size(10);
    let g = ExpressionGenerator::new(ExpressionConfig {
        n_features: 100,
        structure_seed: 9,
        ..ExpressionConfig::default()
    });
    let (data, _) = g.generate(80, 0, 2);
    let train = data.select_rows(&(0..40).collect::<Vec<_>>());
    let test = data.select_rows(&(40..80).collect::<Vec<_>>());
    let plan = TrainingPlan::full(train.n_features());
    let (model, _) = FracModel::fit(&train, &plan, &FracConfig::default());
    group.bench_function("score_40x100", |b| b.iter(|| model.score(black_box(&test))));
    group.finish();
}

fn bench_auc(c: &mut Criterion) {
    let mut group = c.benchmark_group("auc");
    for &n in &[100usize, 10_000] {
        let scores = gaussianish(n, 11);
        let labels: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &(), |b, _| {
            b.iter(|| auc_from_scores(black_box(&scores), black_box(&labels)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_entropy, bench_error_models, bench_ns_scoring, bench_auc);
criterion_main!(benches);
