//! Criterion microbenches for the learning substrate: linear SVR/SVC dual
//! coordinate descent and decision-tree induction across problem sizes.
//!
//! These are the per-model costs that the paper's Table II CPU-hours are
//! made of (f features × (k+1) trainings each).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use frac_dataset::DesignMatrix;
use frac_learn::svc::SvcTrainer;
use frac_learn::svr::SvrTrainer;
use frac_learn::traits::{ClassifierTrainer, RegressorTrainer};
use frac_learn::tree::{ClassificationTreeTrainer, RegressionTreeTrainer};
use std::hint::black_box;

/// Deterministic pseudo-random matrix (SplitMix64-driven).
fn matrix(n: usize, d: usize, seed: u64) -> DesignMatrix {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        (z ^ (z >> 31)) as f64 / u64::MAX as f64 * 2.0 - 1.0
    };
    DesignMatrix::from_raw(n, d, (0..n * d).map(|_| next()).collect())
}

fn real_targets(x: &DesignMatrix) -> Vec<f64> {
    (0..x.n_rows())
        .map(|r| x.row(r).iter().take(8).sum::<f64>() * 0.5)
        .collect()
}

fn class_targets(x: &DesignMatrix) -> Vec<u32> {
    (0..x.n_rows())
        .map(|r| if x.get(r, 0) > 0.0 { 1 } else { 0 })
        .collect()
}

fn bench_svr(c: &mut Criterion) {
    let mut group = c.benchmark_group("svr_train");
    group.sample_size(20);
    // FRaC's regime: tiny n, large d.
    for &(n, d) in &[(40usize, 100usize), (40, 400), (40, 1600), (160, 400)] {
        let x = matrix(n, d, 1);
        let y = real_targets(&x);
        group.bench_with_input(BenchmarkId::from_parameter(format!("n{n}_d{d}")), &(), |b, _| {
            b.iter(|| SvrTrainer::default().train(black_box(&x), black_box(&y)))
        });
    }
    group.finish();
}

fn bench_svc(c: &mut Criterion) {
    let mut group = c.benchmark_group("svc_train");
    group.sample_size(20);
    for &(n, d) in &[(40usize, 100usize), (40, 400), (160, 400)] {
        let x = matrix(n, d, 2);
        let y = class_targets(&x);
        group.bench_with_input(BenchmarkId::from_parameter(format!("n{n}_d{d}")), &(), |b, _| {
            b.iter(|| SvcTrainer::default().train(black_box(&x), black_box(&y), 2))
        });
    }
    group.finish();
}

fn bench_trees(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_train");
    group.sample_size(20);
    for &(n, d) in &[(100usize, 100usize), (100, 400), (400, 100)] {
        let x = matrix(n, d, 3);
        let yc = class_targets(&x);
        let yr = real_targets(&x);
        group.bench_with_input(
            BenchmarkId::new("classification", format!("n{n}_d{d}")),
            &(),
            |b, _| {
                b.iter(|| {
                    ClassificationTreeTrainer::default().train(black_box(&x), black_box(&yc), 2)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("regression", format!("n{n}_d{d}")),
            &(),
            |b, _| {
                b.iter(|| RegressionTreeTrainer::default().train(black_box(&x), black_box(&yr)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_svr, bench_svc, bench_trees);
criterion_main!(benches);
