//! Criterion microbenches for the JL pre-projection pipeline: one-hot
//! encoding, seeded column regeneration, and dataset projection across
//! matrix kinds and output dimensions.
//!
//! The Achlioptas sparse matrix's ⅔ zero entries are the "database
//! friendly" speedup of the paper's ref. 11.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use frac_projection::{one_hot_encode, JlMatrixKind, JlTransform};
use frac_synth::snp::{CohortGroup, SnpConfig, SnpGenerator, SubpopulationMix};
use std::hint::black_box;

fn snp_dataset(n_snps: usize, n: usize) -> frac_dataset::Dataset {
    let g = SnpGenerator::new(SnpConfig {
        n_snps,
        structure_seed: 42,
        ..SnpConfig::default()
    });
    g.generate(
        &[CohortGroup { n, mix: SubpopulationMix::single(0, 1), is_case: false }],
        7,
    )
    .0
}

fn bench_onehot(c: &mut Criterion) {
    let mut group = c.benchmark_group("one_hot_encode");
    for &n_snps in &[200usize, 800] {
        let d = snp_dataset(n_snps, 100);
        group.bench_with_input(BenchmarkId::from_parameter(n_snps), &(), |b, _| {
            b.iter(|| one_hot_encode(black_box(&d)))
        });
    }
    group.finish();
}

fn bench_column_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("jl_column");
    for kind in [
        JlMatrixKind::Gaussian,
        JlMatrixKind::Rademacher,
        JlMatrixKind::AchlioptasSparse,
    ] {
        let t = JlTransform::new(1024, kind, 3);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}_k1024")),
            &(),
            |b, _| b.iter(|| t.column(black_box(17))),
        );
    }
    group.finish();
}

fn bench_project_dataset(c: &mut Criterion) {
    let mut group = c.benchmark_group("jl_project_dataset");
    group.sample_size(10);
    let d = snp_dataset(400, 100);
    for &dim in &[32usize, 128] {
        for kind in [JlMatrixKind::Gaussian, JlMatrixKind::AchlioptasSparse] {
            let t = JlTransform::new(dim, kind, 5);
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("{kind:?}_d{dim}")),
                &(),
                |b, _| b.iter(|| t.project_dataset(black_box(&d))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_onehot, bench_column_generation, bench_project_dataset);
criterion_main!(benches);
