//! Criterion end-to-end benches of the FRaC variants on a fixed small
//! expression data set — the microbench view of the paper's Time %
//! columns: filtering ≪ JL < diverse < full.

use criterion::{criterion_group, criterion_main, Criterion};
use frac_core::{run_variant, FeatureSelector, FracConfig, Variant};
use frac_dataset::Dataset;
use frac_projection::JlMatrixKind;
use frac_synth::{ExpressionConfig, ExpressionGenerator};
use std::hint::black_box;

fn split() -> (Dataset, Dataset) {
    let g = ExpressionGenerator::new(ExpressionConfig {
        n_features: 120,
        n_modules: 10,
        relevant_fraction: 0.7,
        anomaly_modules: 3,
        anomaly_shift: 2.5,
        structure_seed: 77,
        ..ExpressionConfig::default()
    });
    let (data, _) = g.generate(48, 12, 5);
    let train = data.select_rows(&(0..32).collect::<Vec<_>>());
    let test = data.select_rows(&(32..60).collect::<Vec<_>>());
    (train, test)
}

fn bench_variants(c: &mut Criterion) {
    let (train, test) = split();
    let cfg = FracConfig::default();
    let mut group = c.benchmark_group("variant_end_to_end_120f");
    group.sample_size(10);
    let variants: Vec<(&str, Variant)> = vec![
        ("full", Variant::Full),
        (
            "random_filter_p05",
            Variant::FullFilter { selector: FeatureSelector::Random, p: 0.05 },
        ),
        (
            "entropy_filter_p05",
            Variant::FullFilter { selector: FeatureSelector::Entropy, p: 0.05 },
        ),
        ("diverse_p50", Variant::Diverse { p: 0.5, models_per_feature: 1 }),
        (
            "jl_d16",
            Variant::JlProject { dim: 16, kind: JlMatrixKind::Gaussian },
        ),
        (
            "random_filter_ensemble_10x",
            Variant::Ensemble {
                base: Box::new(Variant::FullFilter {
                    selector: FeatureSelector::Random,
                    p: 0.05,
                }),
                members: 10,
            },
        ),
    ];
    for (name, variant) in variants {
        group.bench_function(name, |b| {
            b.iter(|| run_variant(black_box(&train), black_box(&test), &variant, &cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_variants);
criterion_main!(benches);
