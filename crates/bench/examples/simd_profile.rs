//! Throwaway profiling harness: stage breakdown of the expression SVR fit
//! under the scalar-blocked vs vectorized tier, at a configurable size.

use std::time::Instant;

use frac_core::config::RealModel;
use frac_core::{FracConfig, FracModel, TrainingPlan};
use frac_dataset::kernels::{self, KernelTier};
use frac_learn::solver::stats;
use frac_learn::telemetry::TelemetrySession;
use frac_learn::SvrConfig;
use frac_synth::{ExpressionConfig, ExpressionGenerator};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn profile(label: &str, train: &frac_dataset::Dataset, config: &FracConfig) {
    let plan = TrainingPlan::full(train.n_features());
    // Warm-up fit so page faults / lazy init don't land in the trace.
    let _ = FracModel::fit(train, &plan, config);
    let session = TelemetrySession::start().expect("telemetry");
    let before = stats::snapshot();
    let t0 = Instant::now();
    let _ = FracModel::fit(train, &plan, config);
    let wall = t0.elapsed().as_secs_f64();
    let after = stats::snapshot();
    let trace = session.finish();
    println!(
        "== {label}: fit {wall:.3}s | solves {} epochs {} visits {} ==",
        after.solves - before.solves,
        after.epochs - before.epochs,
        after.visits - before.visits
    );
    for t in trace.stage_totals() {
        println!(
            "  {:>14}  spans {:>6}  total {:>8.3}s  {:>5.1}%",
            t.stage,
            t.count,
            t.total_ns as f64 / 1e9,
            100.0 * t.total_ns as f64 / trace.wall_ns.max(1) as f64
        );
    }
}

fn main() {
    let n_features = env_usize("PROF_FEATURES", 320);
    let n_rows = env_usize("PROF_ROWS", 80);
    let (expr, _) = ExpressionGenerator::new(ExpressionConfig {
        n_features,
        n_modules: 8,
        relevant_fraction: 0.8,
        anomaly_modules: 2,
        anomaly_shift: 2.5,
        noise_sd: 0.6,
        structure_seed: 43,
        ..ExpressionConfig::default()
    })
    .generate(n_rows, n_rows, 10);
    let train = expr.select_rows(&(0..n_rows).collect::<Vec<_>>());
    let cfg = FracConfig {
        real_model: RealModel::Svr(SvrConfig {
            tolerance: 1e-4,
            max_epochs: 1000,
            ..SvrConfig::default()
        }),
        ..FracConfig::default()
    };
    eprintln!("{n_features} features x {n_rows} rows");

    kernels::force_tier(Some(KernelTier::Unrolled));
    frac_learn::tree::force_legacy_splitter(true);
    frac_learn::solver::force_unpacked_solver(true);
    profile("scalar-blocked", &train, &cfg);
    kernels::force_tier(None);
    frac_learn::tree::force_legacy_splitter(false);
    frac_learn::solver::force_unpacked_solver(false);
    profile("vectorized", &train, &cfg);
}
