//! Irrelevant-variable robustness — the paper's motivating claim (§I):
//! FRaC "is more robust to irrelevant variables than top competing methods
//! such as local outlier factor or one-class support vector machines"
//! (established in the original FRaC papers, refs. 3–4, and the reason FRaC
//! is viable on genomic data where "the majority of features … are likely
//! to be irrelevant").
//!
//! Protocol: a fixed 60-gene signal core (modules + dysregulation) is
//! padded with growing numbers of pure-noise genes; each detector's AUC is
//! tracked as the noise fraction rises. Expected shape: LOF / OC-SVM / k-NN
//! distance decay towards 0.5 while FRaC (and its filter-ensemble variant)
//! degrade far more slowly.
//!
//! ```text
//! cargo run -p frac-bench --release --bin robustness
//! ```

use frac_baselines::{fit_score_datasets, KnnDistance, LocalOutlierFactor, OneClassSvm};
use frac_core::{run_variant, FeatureSelector, FracConfig, Variant};
use frac_dataset::Dataset;
use frac_eval::auc::auc_from_scores;
use frac_eval::tables::Table;
use frac_synth::{AnomalyMode, ExpressionConfig, ExpressionGenerator};

fn make_case(n_noise: usize, seed: u64) -> (Dataset, Dataset, Vec<bool>) {
    let n_signal = 60;
    let g = ExpressionGenerator::new(ExpressionConfig {
        n_features: n_signal + n_noise,
        n_modules: 8,
        // Only the signal core loads on modules: scale the relevant
        // fraction so the expected number of module genes stays fixed.
        relevant_fraction: 0.9 * n_signal as f64 / (n_signal + n_noise) as f64,
        anomaly_modules: 6,
        anomaly_shift: 2.5,
        // Decoupled anomalies: marginal distributions identical to normal
        // samples, only inter-gene relationships break. Distance/density
        // detectors have *nothing* marginal to latch onto, isolating the
        // irrelevant-variable robustness question.
        anomaly_mode: AnomalyMode::Decouple,
        noise_sd: 0.3,
        structure_seed: 0x0B07 ^ seed,
        ..ExpressionConfig::default()
    });
    let (data, labels) = g.generate(80, 25, seed);
    let train = data.select_rows(&(0..60).collect::<Vec<_>>());
    let test_rows: Vec<usize> = (60..105).collect();
    let test = data.select_rows(&test_rows);
    let test_labels = test_rows.iter().map(|&r| labels[r]).collect();
    (train, test, test_labels)
}

fn main() {
    let noise_levels = [0usize, 60, 240, 480];
    let n_reps = if std::env::var("FRAC_FAST").is_ok_and(|v| v == "1") { 1 } else { 3 };

    let mut table = Table::new(
        format!("Robustness to irrelevant variables (AUC, mean of {n_reps} cohorts; 60 signal genes)"),
        &["noise genes", "FRaC full", "FRaC filt-ens", "LOF", "OC-SVM", "kNN dist"],
    );
    for &n_noise in &noise_levels {
        let mut aucs = [0.0f64; 5];
        for rep in 0..n_reps {
            let (train, test, labels) = make_case(n_noise, 1000 + rep as u64);
            let cfg = FracConfig::default();

            let full = run_variant(&train, &test, &Variant::Full, &cfg);
            aucs[0] += auc_from_scores(&full.ns, &labels);

            let ens = run_variant(
                &train,
                &test,
                &Variant::Ensemble {
                    base: Box::new(Variant::FullFilter {
                        selector: FeatureSelector::Random,
                        p: 0.2,
                    }),
                    members: 5,
                },
                &cfg,
            );
            aucs[1] += auc_from_scores(&ens.ns, &labels);

            let mut lof = LocalOutlierFactor::new(10);
            aucs[2] += auc_from_scores(&fit_score_datasets(&mut lof, &train, &test), &labels);

            let mut svm = OneClassSvm::with_defaults();
            aucs[3] += auc_from_scores(&fit_score_datasets(&mut svm, &train, &test), &labels);

            let mut knn = KnnDistance::new(5);
            aucs[4] += auc_from_scores(&fit_score_datasets(&mut knn, &train, &test), &labels);
        }
        let row: Vec<String> = std::iter::once(n_noise.to_string())
            .chain(aucs.iter().map(|a| format!("{:.3}", a / n_reps as f64)))
            .collect();
        eprintln!("noise={n_noise}: done");
        table.add_row(row);
    }
    println!("\n{}", table.render());
    println!(
        "Expected shape (FRaC papers, refs. 3-4): distance/density methods (LOF,\n\
         OC-SVM, kNN) decay toward 0.5 as irrelevant variables swamp the metric;\n\
         FRaC's per-feature conditional models degrade far more slowly."
    );
}
