//! Table I — number of features, normal samples, and anomaly samples for
//! each data set, paper originals next to our scaled surrogates.
//!
//! ```text
//! cargo run -p frac-bench --release --bin table1
//! ```

use frac_eval::tables::Table;
use frac_synth::registry::{all_specs, make_dataset};

fn main() {
    let mut table = Table::new(
        "TABLE I — data sets (paper original → scaled surrogate)",
        &[
            "data set",
            "features",
            "normal",
            "anomaly",
            "surrogate features",
            "surrogate normal",
            "surrogate anomaly",
        ],
    );
    for spec in all_specs() {
        // Generate to verify the registry matches its declared shape.
        let ld = make_dataset(spec.name, spec.default_seed);
        assert_eq!(ld.data.n_features(), spec.n_features());
        assert_eq!(ld.n_normal(), spec.n_normal);
        assert_eq!(ld.n_anomaly(), spec.n_anomaly);
        table.add_row(vec![
            spec.name.to_string(),
            spec.paper_features.to_string(),
            spec.paper_normal.to_string(),
            spec.paper_anomaly.to_string(),
            spec.n_features().to_string(),
            spec.n_normal.to_string(),
            spec.n_anomaly.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Feature counts are scaled (≈1/10 for expression, more for SNP sets) so the\n\
         full evaluation reruns on one CPU core; all Table III–V quantities are\n\
         within-data-set ratios, which the scaling preserves. See EXPERIMENTS.md."
    );
}
