//! Table III — Ensemble of Random Filtering (10 × p=.05, median), JL
//! pre-projection, and Entropy Filtering (p=.05) on the seven replicated
//! data sets, reported **as fractions of the full run** (Table II): AUC %,
//! Time % (flops ratio), Mem % (peak-bytes ratio), plus the cross-data-set
//! average row.
//!
//! ```text
//! cargo run -p frac-bench --release --bin table3
//! ```

use frac_bench::{dataset_for, full_baseline, n_replicates, run_method, REPLICATED_DATASETS};
use frac_eval::experiments::paper_method_roster;
use frac_eval::tables::{fmt_frac, Table};

fn main() {
    let n_reps = n_replicates();
    let mut table = Table::new(
        format!("TABLE III — fractions of the full run, {n_reps} replicates"),
        &[
            "data set",
            "RandEns AUC%", "RandEns Time%", "RandEns Mem%",
            "JL AUC%", "JL Time%", "JL Mem%",
            "Entropy AUC%", "Entropy Time%", "Entropy Mem%",
        ],
    );
    // Columns 0..3 of the roster are [random ensemble, JL, entropy, …].
    let mut sums = [0.0f64; 9];
    for name in REPLICATED_DATASETS {
        let (spec, ld) = dataset_for(name);
        eprintln!("{name}: full baseline…");
        let full = full_baseline(name, n_reps);
        let roster = paper_method_roster(&spec);
        let mut row = vec![name.to_string()];
        for (i, m) in roster[..3].iter().enumerate() {
            eprintln!("{name}: {}…", m.name);
            let agg = run_method(&ld, &spec, &m.variant, n_reps);
            let auc_pct = agg.auc_fraction_of(&full);
            let time_pct = agg.time_fraction_of(&full);
            let mem_pct = agg.mem_fraction_of(&full);
            let sd_pct = agg.sd_auc / full.mean_auc;
            row.push(format!("{auc_pct:.2} ({sd_pct:.2})"));
            row.push(fmt_frac(time_pct));
            row.push(fmt_frac(mem_pct));
            sums[i * 3] += auc_pct;
            sums[i * 3 + 1] += time_pct;
            sums[i * 3 + 2] += mem_pct;
        }
        table.add_row(row);
    }
    let n = REPLICATED_DATASETS.len() as f64;
    let mut avg_row = vec!["Avg".to_string()];
    for (i, s) in sums.iter().enumerate() {
        if i % 3 == 0 {
            avg_row.push(format!("{:.2}", s / n));
        } else {
            avg_row.push(fmt_frac(s / n));
        }
    }
    table.add_row(avg_row);

    println!("\n{}", table.render());
    println!(
        "Paper Table III averages: RandEns 1.02 / 0.078 / 0.007; JL 1.00 / 0.040 / 0.092;\n\
         Entropy 0.95 / 0.007 / 0.009. Expected shape: all three preserve AUC (entropy\n\
         least consistently) at a few percent of the time and ~1% of the memory."
    );
}
