//! Ablations of the paper's design choices (§II–§III), each a claim made in
//! the text but not tabulated:
//!
//! 1. **Partial vs full filtering** — "partial filtering was consistently
//!    worse than full filtering in time, space, and AUC preservation".
//! 2. **Random vs entropy selection** — "random selection … proved to be the
//!    most effective method, though entropy-based filtering methods proved
//!    effective on some data sets".
//! 3. **Filtering without ensembles** — "random filtering at small values,
//!    though fast, is not particularly stable … AUCs fell within an absolute
//!    range of up to .2" (motivates the 10-member median ensembles).
//! 4. **JL matrix distribution** — Gaussian vs Rademacher vs Achlioptas
//!    sparse (refs. 10–11: guarantees are equivalent; cost differs).
//! 5. **Trees vs linear SVMs on SNP data** — "SVMs did not appear to work
//!    well on the discrete SNP data, taking more time and space … while
//!    producing less accurate anomaly scores".
//! 6. **Ensemble size** — stability (AUC sd) as members grow.
//!
//! ```text
//! cargo run -p frac-bench --release --bin ablations
//! ```

use frac_bench::{dataset_for, full_baseline, n_replicates, run_method};
use frac_core::config::{CatModel, RealModel};
use frac_core::{FeatureSelector, FracConfig, Variant};
use frac_eval::replicates::{aggregate, run_replicates};
use frac_eval::tables::{fmt_frac, Table};
use frac_projection::JlMatrixKind;

fn main() {
    let n_reps = n_replicates();

    // ---------- 1 & 2: filtering style × selector (breast.basal) ----------
    let (spec_e, ld_e) = dataset_for("breast.basal");
    let full = full_baseline("breast.basal", n_reps);
    let mut t1 = Table::new(
        "ABLATION 1/2 — filtering style and selector (breast.basal, fractions of full)",
        &["method", "AUC%", "Time%", "Mem%"],
    );
    for (name, variant) in [
        (
            "full filter, random, p=.05",
            Variant::FullFilter { selector: FeatureSelector::Random, p: 0.05 },
        ),
        (
            "partial filter, random, p=.05",
            Variant::PartialFilter { selector: FeatureSelector::Random, p: 0.05 },
        ),
        (
            "full filter, entropy, p=.05",
            Variant::FullFilter { selector: FeatureSelector::Entropy, p: 0.05 },
        ),
        (
            "partial filter, entropy, p=.05",
            Variant::PartialFilter { selector: FeatureSelector::Entropy, p: 0.05 },
        ),
    ] {
        eprintln!("{name}…");
        let agg = run_method(&ld_e, &spec_e, &variant, n_reps);
        t1.add_row(vec![
            name.to_string(),
            format!("{:.2} ({:.2})", agg.auc_fraction_of(&full), agg.sd_auc / full.mean_auc),
            fmt_frac(agg.time_fraction_of(&full)),
            fmt_frac(agg.mem_fraction_of(&full)),
        ]);
    }
    println!("\n{}", t1.render());
    println!("Expected: partial costs far more time than full at the same p.\n");

    // ---------- 3 & 6: single filter instability vs ensemble size ----------
    let mut t3 = Table::new(
        "ABLATION 3/6 — random-filter stability vs ensemble size (breast.basal)",
        &["members", "AUC% of full", "AUC sd", "Time%"],
    );
    for members in [1usize, 3, 10, 20] {
        let variant = if members == 1 {
            Variant::FullFilter { selector: FeatureSelector::Random, p: 0.05 }
        } else {
            Variant::Ensemble {
                base: Box::new(Variant::FullFilter {
                    selector: FeatureSelector::Random,
                    p: 0.05,
                }),
                members,
            }
        };
        eprintln!("{members} member(s)…");
        let agg = run_method(&ld_e, &spec_e, &variant, n_reps);
        t3.add_row(vec![
            members.to_string(),
            format!("{:.2}", agg.auc_fraction_of(&full)),
            format!("{:.3}", agg.sd_auc),
            fmt_frac(agg.time_fraction_of(&full)),
        ]);
    }
    println!("\n{}", t3.render());
    println!("Expected: AUC variance shrinks as members grow; cost grows linearly.\n");

    // ---------- 4: JL matrix kind (breast.basal) ----------
    let mut t4 = Table::new(
        "ABLATION 4 — JL matrix distribution (breast.basal, fractions of full)",
        &["matrix", "AUC%", "Time%"],
    );
    let dim = frac_eval::jl_dim_for(&spec_e, 1024);
    for kind in [
        JlMatrixKind::Gaussian,
        JlMatrixKind::Rademacher,
        JlMatrixKind::AchlioptasSparse,
    ] {
        eprintln!("JL {kind:?}…");
        let agg = run_method(&ld_e, &spec_e, &Variant::JlProject { dim, kind }, n_reps);
        t4.add_row(vec![
            format!("{kind:?}"),
            format!("{:.2} ({:.2})", agg.auc_fraction_of(&full), agg.sd_auc / full.mean_auc),
            fmt_frac(agg.time_fraction_of(&full)),
        ]);
    }
    println!("\n{}", t4.render());
    println!("Expected: all three distributions preserve AUC equivalently.\n");

    // ---------- 5: trees vs linear SVMs on SNP data (autism) ----------
    let (spec_s, ld_s) = dataset_for("autism");
    let mut t5 = Table::new(
        "ABLATION 5 — categorical model on SNP data (autism, random filter p=.05)",
        &["model", "AUC", "compute (Gflop)", "model bytes proxy"],
    );
    let filter = Variant::FullFilter { selector: FeatureSelector::Random, p: 0.05 };
    for (name, cat_model) in [
        ("decision tree", CatModel::Tree(Default::default())),
        ("linear SVM (one-vs-rest)", CatModel::Svc(Default::default())),
    ] {
        eprintln!("{name}…");
        let cfg = FracConfig {
            real_model: RealModel::Tree(Default::default()),
            cat_model,
            ..FracConfig::snp()
        };
        let agg = aggregate(&run_replicates(
            &ld_s,
            &filter,
            &cfg,
            n_reps,
            spec_s.default_seed ^ 0x5EED,
        ));
        t5.add_row(vec![
            name.to_string(),
            format!("{:.2} ({:.2})", agg.mean_auc, agg.sd_auc),
            format!("{:.2}", agg.mean_flops / 1e9),
            format!("{:.1} MiB", agg.mean_peak_bytes / (1024.0 * 1024.0)),
        ]);
    }
    println!("\n{}", t5.render());
    println!(
        "Expected: comparable AUC (≈0.5 — autism carries no signal), with the SVM\n\
         costing substantially more compute, matching the paper's choice of trees."
    );
}
