//! Figure 3 — JL transform AUC on the schizophrenia data set vs projected
//! dimension, averaged over independent projections with an error bar
//! (standard deviation), rendered as both a data table and an ASCII plot.
//!
//! The paper sweeps d ∈ {1024, 2048, 4096} with 10 projections each and
//! finds AUC *increasing* with d on this discrete data set. We sweep the
//! scaled equivalents (preserving d/D) plus one octave on either side.
//!
//! ```text
//! cargo run -p frac-bench --release --bin fig3
//! ```

use frac_core::{run_variant, FracConfig, Variant};
use frac_dataset::split::derive_seed;
use frac_eval::auc::auc_from_scores;
use frac_eval::experiments::{config_for, jl_dim_for};
use frac_eval::tables::Table;
use frac_projection::JlMatrixKind;
use frac_synth::registry::{make_fixed_split, spec};

fn n_projections() -> usize {
    if std::env::var("FRAC_FAST").is_ok_and(|v| v == "1") {
        2
    } else {
        std::env::var("FRAC_PROJECTIONS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(5)
    }
}

fn main() {
    let schizo = spec("schizophrenia");
    let (train, test) = make_fixed_split(schizo.default_seed);
    let cfg = config_for(&schizo);
    let n_proj = n_projections();

    // The paper's three dims (scaled), extended one octave down and up.
    let base = jl_dim_for(&schizo, 1024);
    let dims: Vec<usize> = vec![base / 2, base, base * 2, base * 4, base * 8];

    let mut table = Table::new(
        format!(
            "FIG. 3 — Projected d vs AUC over schizophrenia ({n_proj} projections per d)"
        ),
        &["d (scaled)", "paper-equivalent d", "mean AUC", "sd"],
    );
    let mut points = Vec::new();
    for &dim in &dims {
        let mut aucs = Vec::with_capacity(n_proj);
        for p in 0..n_proj {
            let run_cfg = FracConfig {
                seed: derive_seed(cfg.seed, 0xF16_3000 + (dim * 131 + p) as u64),
                ..cfg
            };
            let out = run_variant(
                &train,
                &test.data,
                &Variant::JlProject { dim, kind: JlMatrixKind::Gaussian },
                &run_cfg,
            );
            aucs.push(auc_from_scores(&out.ns, &test.labels));
        }
        let mean = aucs.iter().sum::<f64>() / aucs.len() as f64;
        let sd = frac_dataset::stats::std_dev(&aucs).unwrap_or(0.0);
        let paper_equiv =
            (dim as f64 * schizo.paper_features as f64 / schizo.n_features() as f64).round();
        eprintln!("d={dim}: AUC {mean:.3} ({sd:.3})");
        table.add_row(vec![
            dim.to_string(),
            format!("{paper_equiv:.0}"),
            format!("{mean:.3}"),
            format!("{sd:.3}"),
        ]);
        points.push((dim, mean, sd));
    }

    println!("\n{}", table.render());

    // ASCII rendition of the figure: AUC (y) vs log2 d (x).
    println!("AUC");
    let rows = 12;
    let (lo, hi) = (0.40f64, 1.0f64);
    for r in (0..=rows).rev() {
        let y = lo + (hi - lo) * r as f64 / rows as f64;
        let mut line = format!("{y:4.2} |");
        for &(_, mean, sd) in &points {
            let cell = if (mean - y).abs() <= (hi - lo) / (2.0 * rows as f64) {
                "  *  "
            } else if (mean - y).abs() <= sd {
                "  |  "
            } else {
                "     "
            };
            line.push_str(cell);
        }
        println!("{line}");
    }
    let mut axis = "     +".to_string();
    for _ in &points {
        axis.push_str("-----");
    }
    println!("{axis}");
    let mut labels = "      ".to_string();
    for &(dim, _, _) in &points {
        labels.push_str(&format!("{dim:^5}"));
    }
    println!("{labels}  (projected dimension d)");
    println!(
        "\nPaper Fig. 3 shape: AUC rises with d (0.55 → 0.63 → 0.64 at 1024/2048/4096),\n\
         with sizable error bars — more dimensions are needed to capture patterns\n\
         among so many discrete features."
    );
}
