//! Table II — full FRaC on every data set: mean AUC (sd), computation, and
//! memory, with the schizophrenia row *extrapolated* from the autism run
//! exactly as the paper does (it was never run there either).
//!
//! Our compute column is analytic flops and the memory column analytic peak
//! bytes (see DESIGN.md §3); measured wall time is printed alongside.
//!
//! ```text
//! cargo run -p frac-bench --release --bin table2
//! ```

use frac_bench::{dataset_for, full_baseline, n_replicates, REPLICATED_DATASETS};
use frac_eval::experiments::extrapolate_full_run;
use frac_eval::tables::{fmt_bytes, fmt_flops, Table};
use frac_core::ResourceReport;
use frac_synth::registry::spec;

fn main() {
    let n_reps = n_replicates();
    let mut table = Table::new(
        format!("TABLE II — full FRaC, {n_reps} replicates (paper AUC in brackets)"),
        &["data set", "AUC (sd)", "paper", "compute", "memory", "wall s/rep"],
    );
    let mut autism_measured = None;
    for name in REPLICATED_DATASETS {
        let (spec, _) = dataset_for(name);
        eprintln!("running full FRaC on {name}…");
        let agg = full_baseline(name, n_reps);
        if name == "autism" {
            autism_measured = Some(agg);
        }
        table.add_row(vec![
            name.to_string(),
            format!("{:.2} ({:.2})", agg.mean_auc, agg.sd_auc),
            spec.paper_auc
                .map_or("N/A".into(), |a| format!("{a:.2} ({:.2})", spec.paper_auc_sd.unwrap())),
            fmt_flops(agg.mean_flops),
            fmt_bytes(agg.mean_peak_bytes),
            format!("{:.1}", agg.mean_wall_s),
        ]);
    }

    // Extrapolated schizophrenia row (italic in the paper).
    let autism = autism_measured.expect("autism runs above");
    let autism_spec = spec("autism");
    let schizo_spec = spec("schizophrenia");
    let measured = ResourceReport {
        flops: autism.mean_flops as u64,
        model_bytes: autism.mean_peak_bytes as u64,
        ..Default::default()
    };
    let est = extrapolate_full_run(
        &measured,
        (autism_spec.n_features(), autism_spec.n_normal * 2 / 3),
        (schizo_spec.n_features(), 270),
    );
    table.add_row(vec![
        "schizophrenia (extrapolated)".to_string(),
        "N/A".to_string(),
        "N/A".to_string(),
        fmt_flops(est.flops),
        fmt_bytes(est.peak_bytes),
        "-".to_string(),
    ]);

    println!("\n{}", table.render());
    println!(
        "Paper Table II reference (AUC): breast.basal 0.73, biomarkers 0.88, ethnic 0.71,\n\
         bild 0.84, smokers2 0.66, hematopoiesis 0.88, autism 0.50; schizophrenia not run\n\
         (extrapolated 44,000 h / 148 GB from autism — reproduced here as the flops/bytes\n\
         extrapolation in the last row)."
    );
}
