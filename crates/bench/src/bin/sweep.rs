//! Signal-strength sweep helper for surrogate calibration.
//!
//! ```text
//! sweep <features> <modules> <anomaly_modules> <relevant> <n_normal> <n_anomaly> <shift...>
//! ```
//!
//! Runs full FRaC (2 replicates) at each anomaly shift and prints the AUC,
//! so a target Table II AUC can be dialed in per data set.

use frac_core::{FracConfig, Variant};
use frac_eval::replicates::{aggregate, run_replicates};
use frac_synth::registry::LabeledDataset;
use frac_synth::{ExpressionConfig, ExpressionGenerator};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 7 {
        eprintln!("usage: sweep <features> <modules> <anom_modules> <relevant> <n_normal> <n_anomaly> <shift...>");
        std::process::exit(2);
    }
    let n_features: usize = args[0].parse().unwrap();
    let n_modules: usize = args[1].parse().unwrap();
    let anomaly_modules: usize = args[2].parse().unwrap();
    let relevant_fraction: f64 = args[3].parse().unwrap();
    let n_normal: usize = args[4].parse().unwrap();
    let n_anomaly: usize = args[5].parse().unwrap();
    for shift in &args[6..] {
        let anomaly_shift: f64 = shift.parse().unwrap();
        let g = ExpressionGenerator::new(ExpressionConfig {
            n_features,
            n_modules,
            relevant_fraction,
            anomaly_modules,
            anomaly_shift,
            anomaly_mode: frac_synth::AnomalyMode::Offset,
            loading_scale: 1.0,
            noise_sd: 1.0,
            structure_seed: 0xCAFE,
        });
        let (data, labels) = g.generate(n_normal, n_anomaly, 0xBEEF);
        let ld = LabeledDataset { name: "sweep".into(), data, labels };
        let results = run_replicates(&ld, &Variant::Full, &FracConfig::default(), 2, 7);
        let agg = aggregate(&results);
        println!("shift {anomaly_shift}: AUC {:.3} ({:.3})", agg.mean_auc, agg.sd_auc);
    }
}
