//! Performance snapshot: full-FRaC fit + score on a mid-size surrogate,
//! comparing the shared-pool path against the legacy per-target encode
//! path, written to `BENCH_fit.json` so the perf trajectory is tracked
//! across PRs.
//!
//! ```text
//! cargo run -p frac-bench --release --bin perfsnapshot
//! ```
//!
//! Environment knobs: `FRAC_PERF_FEATURES` (default 400),
//! `FRAC_PERF_ROWS` (default 80), `FRAC_PERF_REPS` (default 2; best of).

use frac_core::config::RealModel;
use frac_core::{FracConfig, FracModel, ResourceReport, TrainingPlan};
use frac_dataset::Dataset;
use frac_synth::snp::CohortGroup;
use frac_synth::{ExpressionConfig, ExpressionGenerator, SnpConfig, SnpGenerator, SubpopulationMix};
use std::time::Instant;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// One timed fit+score run.
struct Snapshot {
    fit_s: f64,
    score_s: f64,
    report: ResourceReport,
}

fn best_of<F: Fn() -> Snapshot>(reps: usize, run: F) -> Snapshot {
    let mut best: Option<Snapshot> = None;
    for _ in 0..reps {
        let s = run();
        if best.as_ref().is_none_or(|b| s.fit_s < b.fit_s) {
            best = Some(s);
        }
    }
    best.expect("at least one rep")
}

fn timed(
    train: &Dataset,
    test: &Dataset,
    plan: &TrainingPlan,
    config: &FracConfig,
    pooled: bool,
) -> Snapshot {
    let t0 = Instant::now();
    let (model, report) = if pooled {
        FracModel::fit(train, plan, config)
    } else {
        FracModel::fit_unpooled(train, plan, config)
    };
    let fit_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let ns = if pooled {
        model.score(test)
    } else {
        model.contributions_unpooled(test).ns_scores()
    };
    let score_s = t1.elapsed().as_secs_f64();
    assert!(ns.iter().all(|s| s.is_finite()));
    Snapshot { fit_s, score_s, report }
}

/// Time one family (surrogate + config) through both paths and render its
/// JSON object.
fn family_json(
    name: &str,
    train: &Dataset,
    test: &Dataset,
    config: &FracConfig,
    reps: usize,
) -> String {
    let plan = TrainingPlan::full(train.n_features());
    let pooled = best_of(reps, || timed(train, test, &plan, config, true));
    let legacy = best_of(reps, || timed(train, test, &plan, config, false));
    let fit_speedup = legacy.fit_s / pooled.fit_s;
    let score_speedup = legacy.score_s / pooled.score_s;
    // Design-matrix bytes allocated during fit: the legacy path encodes one
    // matrix per target (O(f² · n) cells over the run); the pool is O(f · n).
    let f = train.n_features() as u64;
    let width = train.schema().one_hot_width() as u64;
    let cell = std::mem::size_of::<f64>() as u64;
    let encode_bytes_legacy = f * train.n_rows() as u64 * (width - width / f) * cell;
    let encode_bytes_pooled = pooled.report.pool_bytes;
    eprintln!(
        "{name}: fit pooled {:.3}s vs legacy {:.3}s ({fit_speedup:.2}x); \
         score pooled {:.4}s vs legacy {:.4}s ({score_speedup:.2}x); \
         encode alloc {} -> {} bytes",
        pooled.fit_s, legacy.fit_s, pooled.score_s, legacy.score_s,
        encode_bytes_legacy, encode_bytes_pooled
    );
    format!(
        "  \"{name}\": {{\n    \
         \"surrogate\": {{\"n_features\": {}, \"train_rows\": {}, \"test_rows\": {}}},\n    \
         \"pooled\": {{\"fit_wall_s\": {:.6}, \"score_wall_s\": {:.6}, \"flops\": {}, \
         \"peak_bytes\": {}, \"pool_bytes\": {}, \"transient_bytes\": {}}},\n    \
         \"legacy\": {{\"fit_wall_s\": {:.6}, \"score_wall_s\": {:.6}, \"flops\": {}, \
         \"peak_bytes\": {}, \"pool_bytes\": {}, \"transient_bytes\": {}}},\n    \
         \"encode_bytes_legacy\": {encode_bytes_legacy},\n    \
         \"encode_bytes_pooled\": {encode_bytes_pooled},\n    \
         \"fit_speedup\": {:.3},\n    \"score_speedup\": {:.3}\n  }}",
        train.n_features(),
        train.n_rows(),
        test.n_rows(),
        pooled.fit_s,
        pooled.score_s,
        pooled.report.flops,
        pooled.report.peak_bytes(),
        pooled.report.pool_bytes,
        pooled.report.transient_bytes,
        legacy.fit_s,
        legacy.score_s,
        legacy.report.flops,
        legacy.report.peak_bytes(),
        legacy.report.pool_bytes,
        legacy.report.transient_bytes,
        fit_speedup,
        score_speedup,
    )
}

fn main() {
    let n_features = env_usize("FRAC_PERF_FEATURES", 400);
    let n_rows = env_usize("FRAC_PERF_ROWS", 80);
    let reps = env_usize("FRAC_PERF_REPS", 2).max(1);
    let n_test = n_rows;

    eprintln!("perfsnapshot: {n_features} features x {n_rows} train rows, best of {reps}");

    let (expr, _) = ExpressionGenerator::new(ExpressionConfig {
        n_features,
        n_modules: 12,
        relevant_fraction: 0.8,
        anomaly_modules: 3,
        anomaly_shift: 2.5,
        noise_sd: 0.6,
        structure_seed: 42,
        ..ExpressionConfig::default()
    })
    .generate(n_rows, n_test, 9);
    let expr_train = expr.select_rows(&(0..n_rows).collect::<Vec<_>>());
    let expr_test = expr.select_rows(&(n_rows..n_rows + n_test).collect::<Vec<_>>());

    let (snp, _) = SnpGenerator::new(SnpConfig {
        n_snps: n_features,
        n_subpops: 2,
        fst: 0.1,
        n_disease_loci: n_features / 20,
        disease_effect: 0.2,
        structure_seed: 42,
        ..SnpConfig::default()
    })
    .generate(
        &[
            CohortGroup { n: n_rows, mix: SubpopulationMix::uniform(2), is_case: false },
            CohortGroup { n: n_test, mix: SubpopulationMix::uniform(2), is_case: true },
        ],
        9,
    );
    let snp_train = snp.select_rows(&(0..n_rows).collect::<Vec<_>>());
    let snp_test = snp.select_rows(&(n_rows..n_rows + n_test).collect::<Vec<_>>());

    let expr_json =
        family_json("expression", &expr_train, &expr_test, &FracConfig::expression(), reps);
    let snp_json = family_json("snp", &snp_train, &snp_test, &FracConfig::snp(), reps);
    // Encode-bound family: constant predictors make training trivial, so the
    // fit wall is dominated by design-matrix construction — the component
    // the pool replaces. This isolates the O(f² · n) → O(f · n) change from
    // solver time, which dominates the two paper families at this scale.
    let encode_cfg =
        FracConfig { real_model: RealModel::Constant, ..FracConfig::default() };
    let encode_json = family_json("encode_bound", &expr_train, &expr_test, &encode_cfg, reps);

    let json = format!("{{\n{expr_json},\n{snp_json},\n{encode_json}\n}}\n");
    std::fs::write("BENCH_fit.json", &json).expect("write BENCH_fit.json");
    println!("{json}");
}
