//! Performance snapshot: full-FRaC fit + score on a mid-size surrogate,
//! comparing the shared-pool path against the legacy per-target encode
//! path (`BENCH_fit.json`), and the fast solver path (shrinking + warm
//! starts + blocked kernels) against the strict reference solver on
//! solver-bound SVM configurations (`BENCH_solver.json`), so the perf
//! trajectory is tracked across PRs. Further families measure journal
//! overhead (`BENCH_journal.json`), telemetry overhead
//! (`BENCH_telemetry.json`), sharded-run scaling — per-shard journals
//! fitted concurrently then merged, at 1/2/4 shards
//! (`BENCH_shard.json`) — the serving daemon: single-record p50/p99
//! latency, batched throughput, and the amortization win over one-shot
//! load-per-score (`BENCH_serve.json`) — the SIMD kernel tier — per-kernel
//! throughput, scalar-blocked vs vectorized fit wall, and f32-mode NS
//! drift (`BENCH_simd.json`) — and the Gram-matrix dual strategy against
//! the primal fast path, with a d/n sweep locating the measured crossover
//! (`BENCH_gram.json`) — and the out-of-core FCB path: chunked pack time
//! and peak encode buffer on a synthetic tall dataset, mmap-open vs
//! TSV-parse wall clock, peak-RSS checkpoints around each load path, and
//! an NS bit-identity check between FCB-trained and TSV-trained models
//! (`BENCH_oocore.json`).
//!
//! ```text
//! cargo run -p frac-bench --release --bin perfsnapshot [-- --family NAME]...
//! ```
//!
//! With no `--family` flag every family runs; `--family` (repeatable:
//! `fit | solver | journal | shard | telemetry | serve | simd | gram |
//! oocore`) restricts the run to the named families.
//!
//! Environment knobs: `FRAC_PERF_FEATURES` (default 400),
//! `FRAC_PERF_ROWS` (default 80), `FRAC_PERF_REPS` (default 2; best of),
//! `FRAC_PERF_SOLVER_FEATURES` (default 160; solver-bound families),
//! `FRAC_PERF_OOCORE_ROWS` / `FRAC_PERF_OOCORE_COLS` /
//! `FRAC_PERF_OOCORE_CHUNK` (defaults 150000 / 24 / 4096; oocore only).

use frac_core::config::{CatModel, RealModel};
use frac_core::{FracConfig, FracModel, ResourceReport, SolverMode, SolverStrategy, TrainingPlan};
use frac_dataset::kernels::{self, KernelTier};
use frac_dataset::{Dataset, DesignMatrix};
use frac_learn::solver::stats::{self, SolverStats};
use frac_learn::svr::SvrTrainer;
use frac_learn::telemetry::{Counter, TelemetryReport, TelemetrySession};
use frac_learn::traits::RegressorTrainer;
use frac_learn::{SvcConfig, SvrConfig};
use frac_synth::snp::CohortGroup;
use frac_synth::{ExpressionConfig, ExpressionGenerator, SnpConfig, SnpGenerator, SubpopulationMix};
use std::time::Instant;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// One timed fit+score run.
struct Snapshot {
    fit_s: f64,
    score_s: f64,
    report: ResourceReport,
}

fn best_of<F: Fn() -> Snapshot>(reps: usize, run: F) -> Snapshot {
    let mut best: Option<Snapshot> = None;
    for _ in 0..reps {
        let s = run();
        if best.as_ref().is_none_or(|b| s.fit_s < b.fit_s) {
            best = Some(s);
        }
    }
    best.expect("at least one rep")
}

fn timed(
    train: &Dataset,
    test: &Dataset,
    plan: &TrainingPlan,
    config: &FracConfig,
    pooled: bool,
) -> Snapshot {
    let t0 = Instant::now();
    let (model, report) = if pooled {
        FracModel::fit(train, plan, config)
    } else {
        FracModel::fit_unpooled(train, plan, config)
    };
    let fit_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let ns = if pooled {
        model.score(test)
    } else {
        model.contributions_unpooled(test).ns_scores()
    };
    let score_s = t1.elapsed().as_secs_f64();
    assert!(ns.iter().all(|s| s.is_finite()));
    Snapshot { fit_s, score_s, report }
}

/// Time one family (surrogate + config) through both paths and render its
/// JSON object.
fn family_json(
    name: &str,
    train: &Dataset,
    test: &Dataset,
    config: &FracConfig,
    reps: usize,
) -> String {
    let plan = TrainingPlan::full(train.n_features());
    let pooled = best_of(reps, || timed(train, test, &plan, config, true));
    let legacy = best_of(reps, || timed(train, test, &plan, config, false));
    let fit_speedup = legacy.fit_s / pooled.fit_s;
    let score_speedup = legacy.score_s / pooled.score_s;
    // Design-matrix bytes allocated during fit: the legacy path encodes one
    // matrix per target (O(f² · n) cells over the run); the pool is O(f · n).
    let f = train.n_features() as u64;
    let width = train.schema().one_hot_width() as u64;
    let cell = std::mem::size_of::<f64>() as u64;
    let encode_bytes_legacy = f * train.n_rows() as u64 * (width - width / f) * cell;
    let encode_bytes_pooled = pooled.report.pool_bytes;
    eprintln!(
        "{name}: fit pooled {:.3}s vs legacy {:.3}s ({fit_speedup:.2}x); \
         score pooled {:.4}s vs legacy {:.4}s ({score_speedup:.2}x); \
         encode alloc {} -> {} bytes",
        pooled.fit_s, legacy.fit_s, pooled.score_s, legacy.score_s,
        encode_bytes_legacy, encode_bytes_pooled
    );
    eprintln!("{name}: health {}", pooled.report.health.summary());
    format!(
        "  \"{name}\": {{\n    \
         \"surrogate\": {{\"n_features\": {}, \"train_rows\": {}, \"test_rows\": {}}},\n    \
         \"pooled\": {{\"fit_wall_s\": {:.6}, \"score_wall_s\": {:.6}, \"flops\": {}, \
         \"peak_bytes\": {}, \"pool_bytes\": {}, \"transient_bytes\": {}}},\n    \
         \"legacy\": {{\"fit_wall_s\": {:.6}, \"score_wall_s\": {:.6}, \"flops\": {}, \
         \"peak_bytes\": {}, \"pool_bytes\": {}, \"transient_bytes\": {}}},\n    \
         \"encode_bytes_legacy\": {encode_bytes_legacy},\n    \
         \"encode_bytes_pooled\": {encode_bytes_pooled},\n    \
         \"health\": \"{}\",\n    \
         \"fit_speedup\": {:.3},\n    \"score_speedup\": {:.3}\n  }}",
        train.n_features(),
        train.n_rows(),
        test.n_rows(),
        pooled.fit_s,
        pooled.score_s,
        pooled.report.flops,
        pooled.report.peak_bytes(),
        pooled.report.pool_bytes,
        pooled.report.transient_bytes,
        legacy.fit_s,
        legacy.score_s,
        legacy.report.flops,
        legacy.report.peak_bytes(),
        legacy.report.pool_bytes,
        legacy.report.transient_bytes,
        pooled.report.health.summary(),
        fit_speedup,
        score_speedup,
    )
}

/// One timed fit+score run with the process-wide solver counters it drove.
struct SolverSnapshot {
    fit_s: f64,
    score_s: f64,
    flops: u64,
    stats: SolverStats,
}

fn solver_timed(
    train: &Dataset,
    test: &Dataset,
    plan: &TrainingPlan,
    config: &FracConfig,
) -> SolverSnapshot {
    stats::reset();
    let t0 = Instant::now();
    let (model, report) = FracModel::fit(train, plan, config);
    let fit_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let ns = model.score(test);
    let score_s = t1.elapsed().as_secs_f64();
    assert!(ns.iter().all(|s| s.is_finite()));
    SolverSnapshot { fit_s, score_s, flops: report.flops, stats: stats::snapshot() }
}

fn solver_best_of(
    reps: usize,
    train: &Dataset,
    test: &Dataset,
    plan: &TrainingPlan,
    config: &FracConfig,
) -> SolverSnapshot {
    let mut best: Option<SolverSnapshot> = None;
    for _ in 0..reps {
        let s = solver_timed(train, test, plan, config);
        if best.as_ref().is_none_or(|b| s.fit_s < b.fit_s) {
            best = Some(s);
        }
    }
    best.expect("at least one rep")
}

fn solver_mode_json(s: &SolverSnapshot) -> String {
    format!(
        "{{\"fit_wall_s\": {:.6}, \"score_wall_s\": {:.6}, \"flops\": {}, \
         \"solves\": {}, \"epochs\": {}, \"coordinate_visits\": {}, \
         \"dense_slots\": {}, \"active_set_occupancy\": {:.4}}}",
        s.fit_s,
        s.score_s,
        s.flops,
        s.stats.solves,
        s.stats.epochs,
        s.stats.visits,
        s.stats.dense_slots,
        s.stats.occupancy(),
    )
}

/// Time one solver-bound family through the strict reference solver and the
/// fast path (shrinking + warm-started duals + blocked kernels) and render
/// its JSON object.
fn solver_family_json(
    name: &str,
    train: &Dataset,
    test: &Dataset,
    base: &FracConfig,
    reps: usize,
) -> String {
    let plan = TrainingPlan::full(train.n_features());
    let strict =
        solver_best_of(reps, train, test, &plan, &(*base).with_solver_mode(SolverMode::Strict));
    let fast =
        solver_best_of(reps, train, test, &plan, &(*base).with_solver_mode(SolverMode::Fast));
    let fit_speedup = strict.fit_s / fast.fit_s;
    let epoch_ratio = fast.stats.epochs as f64 / strict.stats.epochs as f64;
    let visit_ratio = fast.stats.visits as f64 / strict.stats.visits as f64;
    eprintln!(
        "{name}: fit strict {:.3}s vs fast {:.3}s ({fit_speedup:.2}x); \
         epochs {} -> {} ({epoch_ratio:.3}); visits {} -> {} ({visit_ratio:.3}); \
         fast occupancy {:.3}",
        strict.fit_s,
        fast.fit_s,
        strict.stats.epochs,
        fast.stats.epochs,
        strict.stats.visits,
        fast.stats.visits,
        fast.stats.occupancy(),
    );
    format!(
        "  \"{name}\": {{\n    \
         \"surrogate\": {{\"n_features\": {}, \"train_rows\": {}, \"test_rows\": {}}},\n    \
         \"strict\": {},\n    \
         \"fast\": {},\n    \
         \"fit_speedup\": {fit_speedup:.3},\n    \
         \"epoch_ratio\": {epoch_ratio:.4},\n    \
         \"visit_ratio\": {visit_ratio:.4}\n  }}",
        train.n_features(),
        train.n_rows(),
        test.n_rows(),
        solver_mode_json(&strict),
        solver_mode_json(&fast),
    )
}

/// Time one family through the plain fit and the journaled fit (fresh
/// journal each rep — no resume) and render its JSON object with the wall
/// overhead the write-ahead checkpointing costs.
fn journal_family_json(
    name: &str,
    train: &Dataset,
    test: &Dataset,
    config: &FracConfig,
    reps: usize,
) -> String {
    let plan = TrainingPlan::full(train.n_features());
    let plain = best_of(reps, || timed(train, test, &plan, config, true));
    let journal_path =
        std::env::temp_dir().join(format!("frac-perf-journal-{name}.frj"));
    let journaled = best_of(reps, || {
        let _ = std::fs::remove_file(&journal_path);
        let t0 = Instant::now();
        let fit = FracModel::fit_journaled(
            train,
            &plan,
            config,
            &frac_core::RunBudget::unlimited(),
            &journal_path,
        )
        .expect("journaled fit");
        assert_eq!(fit.resumed, 0, "bench must measure a fresh run");
        assert!(!fit.journal_broken);
        let fit_s = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let ns = fit.model.score(test);
        let score_s = t1.elapsed().as_secs_f64();
        assert!(ns.iter().all(|s| s.is_finite()));
        Snapshot { fit_s, score_s, report: fit.report }
    });
    let journal_bytes = std::fs::metadata(&journal_path).map(|m| m.len()).unwrap_or(0);
    let _ = std::fs::remove_file(&journal_path);
    let overhead = journaled.fit_s / plain.fit_s - 1.0;
    eprintln!(
        "{name}: fit plain {:.3}s vs journaled {:.3}s ({:+.2}% overhead); \
         journal {} bytes for {} targets",
        plain.fit_s,
        journaled.fit_s,
        overhead * 100.0,
        journal_bytes,
        plan.n_targets(),
    );
    format!(
        "  \"{name}\": {{\n    \
         \"surrogate\": {{\"n_features\": {}, \"train_rows\": {}, \"test_rows\": {}}},\n    \
         \"plain\": {{\"fit_wall_s\": {:.6}, \"score_wall_s\": {:.6}}},\n    \
         \"journaled\": {{\"fit_wall_s\": {:.6}, \"score_wall_s\": {:.6}}},\n    \
         \"journal_bytes\": {journal_bytes},\n    \
         \"records\": {},\n    \
         \"fit_overhead_fraction\": {overhead:.4}\n  }}",
        train.n_features(),
        train.n_rows(),
        test.n_rows(),
        plain.fit_s,
        plain.score_s,
        journaled.fit_s,
        journaled.score_s,
        plan.n_targets(),
    )
}

/// Sharded-run scaling: each shard's sub-plan is fitted by
/// [`frac_core::shard::worker_run`] on its own thread (process spawn and
/// supervisor poll latency are the supervisor's business, not the fit's),
/// journaling into its own `.s<k>-<n>` file, then
/// [`frac_core::shard::resume_shards`] merges the complete set. Per shard
/// count the best-of-reps fit wall, merge wall, and journal footprint are
/// recorded, and the merged NS must be bit-identical to a single-process
/// fit.
fn shard_family_json(
    name: &str,
    train: &Dataset,
    test: &Dataset,
    config: &FracConfig,
    reps: usize,
) -> String {
    let plan = TrainingPlan::full(train.n_features());
    let mut single_fit_s = f64::INFINITY;
    let mut reference_bits: Option<Vec<u64>> = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let (model, _) = FracModel::fit(train, &plan, config);
        single_fit_s = single_fit_s.min(t0.elapsed().as_secs_f64());
        let bits: Vec<u64> = model.score(test).iter().map(|v| v.to_bits()).collect();
        if let Some(first) = &reference_bits {
            assert_eq!(first, &bits, "single-process fits must be deterministic");
        } else {
            reference_bits = Some(bits);
        }
    }
    let reference_bits = reference_bits.expect("at least one rep");
    let dir = std::env::temp_dir().join(format!("frac-perf-shard-{name}"));
    let mut rows = Vec::new();
    for &n_shards in &[1usize, 2, 4] {
        let mut best: Option<(f64, f64, u64)> = None;
        for _ in 0..reps {
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).expect("shard bench dir");
            let base = dir.join("run.frj");
            let t0 = Instant::now();
            std::thread::scope(|s| {
                for k in 0..n_shards {
                    let base = &base;
                    let plan = &plan;
                    s.spawn(move || {
                        let fit = frac_core::shard::worker_run(
                            train,
                            plan,
                            config,
                            &frac_core::RunBudget::unlimited(),
                            base,
                            k,
                            n_shards,
                        )
                        .expect("shard worker");
                        assert_eq!(fit.resumed, 0, "bench must measure a fresh run");
                    });
                }
            });
            let fit_s = t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            let merged = frac_core::shard::resume_shards(
                train,
                &plan,
                config,
                &frac_core::RunBudget::unlimited(),
                &base,
                n_shards,
                &mut |e| panic!("complete shard journals must merge silently: {e}"),
            )
            .expect("shard merge");
            let merge_s = t1.elapsed().as_secs_f64();
            let bits: Vec<u64> =
                merged.model.score(test).iter().map(|v| v.to_bits()).collect();
            assert_eq!(
                reference_bits, bits,
                "merged NS must be bit-identical to the single-process fit"
            );
            let journal_bytes: u64 = (0..n_shards)
                .map(|k| {
                    let p = frac_core::shard::shard_journal_path(&base, k, n_shards);
                    std::fs::metadata(p).map(|m| m.len()).unwrap_or(0)
                })
                .sum();
            if best.is_none_or(|b| fit_s < b.0) {
                best = Some((fit_s, merge_s, journal_bytes));
            }
        }
        let (fit_s, merge_s, journal_bytes) = best.expect("at least one rep");
        let overhead = fit_s / single_fit_s - 1.0;
        eprintln!(
            "{name}: {n_shards} shard(s) fit {fit_s:.3}s ({:+.2}% vs single-process \
             {single_fit_s:.3}s), merge {merge_s:.4}s, journals {journal_bytes} bytes",
            overhead * 100.0,
        );
        rows.push(format!(
            "      {{\"n_shards\": {n_shards}, \"fit_wall_s\": {fit_s:.6}, \
             \"merge_wall_s\": {merge_s:.6}, \"journal_bytes\": {journal_bytes}, \
             \"fit_overhead_fraction\": {overhead:.4}}}"
        ));
    }
    let _ = std::fs::remove_dir_all(&dir);
    format!(
        "  \"{name}\": {{\n    \
         \"surrogate\": {{\"n_features\": {}, \"train_rows\": {}, \"test_rows\": {}}},\n    \
         \"single_process\": {{\"fit_wall_s\": {single_fit_s:.6}}},\n    \
         \"records\": {},\n    \
         \"ns_bits_identical\": true,\n    \
         \"shards\": [\n{}\n    ]\n  }}",
        train.n_features(),
        train.n_rows(),
        test.n_rows(),
        plan.n_targets(),
        rows.join(",\n"),
    )
}

/// Time one family with telemetry recording off (no session: every probe
/// is one relaxed atomic load) vs on (a live [`TelemetrySession`] draining
/// span records around the same fit + score), assert the scores are
/// bit-identical both ways, and render its JSON object with the wall
/// overhead and the per-stage wall shares the trace attributes.
fn telemetry_family_json(
    name: &str,
    train: &Dataset,
    test: &Dataset,
    config: &FracConfig,
    reps: usize,
) -> String {
    let plan = TrainingPlan::full(train.n_features());
    // The probe cost is far below run-to-run wall noise, so the two sides
    // are measured in *interleaved* pairs (slow drift — thermals, noisy
    // neighbours — then hits both equally) and compared best-vs-best.
    let reps = reps.max(3);
    let mut off_fit_s = f64::INFINITY;
    let mut best_on: Option<(f64, TelemetryReport)> = None;
    let mut ns_off: Option<Vec<u64>> = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let (model, _) = FracModel::fit(train, &plan, config);
        off_fit_s = off_fit_s.min(t0.elapsed().as_secs_f64());
        let bits: Vec<u64> = model.score(test).iter().map(|v| v.to_bits()).collect();
        if let Some(first) = &ns_off {
            assert_eq!(first, &bits, "untraced fits must be deterministic");
        } else {
            ns_off = Some(bits);
        }

        let session = TelemetrySession::start().expect("no concurrent telemetry session");
        let t0 = Instant::now();
        let (model, _) = FracModel::fit(train, &plan, config);
        let fit_s = t0.elapsed().as_secs_f64();
        let ns_on: Vec<u64> = model.score(test).iter().map(|v| v.to_bits()).collect();
        let trace = session.finish();
        // Telemetry must observe, never perturb.
        assert_eq!(ns_off.as_ref(), Some(&ns_on), "telemetry session changed the scores");
        if best_on.as_ref().is_none_or(|b| fit_s < b.0) {
            best_on = Some((fit_s, trace));
        }
    }
    let (on_fit_s, trace) = best_on.expect("at least one rep");
    let overhead = on_fit_s / off_fit_s - 1.0;
    eprintln!(
        "{name}: fit untraced {:.3}s vs traced {:.3}s ({:+.2}% overhead); \
         {} spans, {} solver epochs attributed",
        off_fit_s,
        on_fit_s,
        overhead * 100.0,
        trace.spans.len(),
        trace.counter(Counter::SolverEpochs),
    );
    let wall = trace.wall_ns.max(1) as f64;
    let stages: Vec<String> = trace
        .stage_totals()
        .iter()
        .map(|t| {
            format!(
                "\"{}\": {{\"spans\": {}, \"total_s\": {:.6}, \"share_of_wall\": {:.4}}}",
                t.stage,
                t.count,
                t.total_ns as f64 / 1e9,
                t.total_ns as f64 / wall
            )
        })
        .collect();
    let counters: Vec<String> = Counter::ALL
        .iter()
        .map(|&c| format!("\"{}\": {}", c.as_str(), trace.counter(c)))
        .collect();
    format!(
        "  \"{name}\": {{\n    \
         \"surrogate\": {{\"n_features\": {}, \"train_rows\": {}, \"test_rows\": {}}},\n    \
         \"untraced\": {{\"fit_wall_s\": {:.6}}},\n    \
         \"traced\": {{\"fit_wall_s\": {:.6}, \"spans\": {}, \"session_wall_s\": {:.6}}},\n    \
         \"stages\": {{{}}},\n    \
         \"counters\": {{{}}},\n    \
         \"score_bits_identical\": true,\n    \
         \"fit_overhead_fraction\": {overhead:.4}\n  }}",
        train.n_features(),
        train.n_rows(),
        test.n_rows(),
        off_fit_s,
        on_fit_s,
        trace.spans.len(),
        trace.wall_ns as f64 / 1e9,
        stages.join(", "),
        counters.join(", "),
    )
}

/// The serving daemon against one-shot scoring on the expression
/// surrogate: single-record p50/p99 latency (daemon-side, arrival→reply),
/// batched throughput, and the amortization win over paying the model load
/// (`frac score --model`) per record. Latency windows are tiny, so each
/// phase takes the best of `reps` rounds against one resident daemon.
fn serve_family_json(train: &Dataset, test: &Dataset, config: &FracConfig, reps: usize) -> String {
    use frac_core::serve::{ServeConfig, Server};
    use std::io::{BufRead, BufReader, Write};

    let plan = TrainingPlan::full(train.n_features());
    let (model, _) = FracModel::fit(train, &plan, config);
    let expected: Vec<u64> = model.score(test).iter().map(|v| v.to_bits()).collect();
    let dir = std::env::temp_dir().join(format!("frac-serve-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench temp dir");
    let model_path = dir.join("model.frac");
    model.save(&model_path).expect("save bench model");

    // Render each test row once up front so client formatting stays out of
    // every timing window.
    let lines: Vec<String> = (0..test.n_rows())
        .map(|r| {
            test.row(r)
                .into_iter()
                .map(|v| match v {
                    frac_dataset::Value::Real(x) => format!("{x}"),
                    frac_dataset::Value::Categorical(c) => format!("{c}"),
                    frac_dataset::Value::Missing => "?".into(),
                })
                .collect::<Vec<_>>()
                .join("\t")
        })
        .collect();

    let server = Server::new(
        FracModel::load(&model_path).expect("load bench model"),
        model_path.clone(),
        train.schema().clone(),
        ServeConfig::default(),
    )
    .expect("bench model serves its own schema");
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let daemon = std::thread::spawn(move || server.serve_listener(listener).expect("serve"));

    let stream = std::net::TcpStream::connect(addr).expect("connect to daemon");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let mut seq = 0u64;
    let recv = |reader: &mut BufReader<std::net::TcpStream>| -> String {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).expect("daemon reply") > 0, "daemon hung up");
        line.trim_end().to_string()
    };

    // Phase 1: single records, strictly request/reply — every request is
    // its own batch, so the daemon-side latency is the floor. `reps`
    // passes over the test set; p50/p99 come from `cmd stats` (the same
    // ring the exit telemetry reports).
    let singles = reps.max(2) * lines.len();
    for i in 0..singles {
        writer.write_all(lines[i % lines.len()].as_bytes()).expect("send");
        writer.write_all(b"\n").expect("send");
        seq += 1;
        let reply = recv(&mut reader);
        let bits = reply
            .strip_prefix(&format!("ns {seq} "))
            .and_then(|s| s.parse::<f64>().ok())
            .unwrap_or_else(|| panic!("bad reply: {reply}"))
            .to_bits();
        assert_eq!(bits, expected[i % lines.len()], "serve diverged from frac score");
    }
    // Replies past this point are matched by prefix, not seq.
    writer.write_all(b"cmd stats\n").expect("send stats");
    let stats = recv(&mut reader);
    let pick = |key: &str| -> u64 {
        stats
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix(key))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("no {key} in stats: {stats}"))
    };
    let (p50_us, p99_us) = (pick("p50_us="), pick("p99_us="));

    // Phase 2: the whole test set as one burst per round — the daemon
    // batches it through one encode pool. Throughput is client-observed
    // wall (send first byte → last reply read), best of `reps`.
    let mut burst_wall_s = f64::INFINITY;
    for _ in 0..reps.max(2) {
        let t0 = Instant::now();
        let mut payload = String::new();
        for line in &lines {
            payload.push_str(line);
            payload.push('\n');
        }
        writer.write_all(payload.as_bytes()).expect("send burst");
        for _ in 0..lines.len() {
            let reply = recv(&mut reader);
            assert!(reply.starts_with("ns "), "burst reply: {reply}");
        }
        burst_wall_s = burst_wall_s.min(t0.elapsed().as_secs_f64());
    }
    let batched_rps = lines.len() as f64 / burst_wall_s;

    writer.write_all(b"cmd stop\n").expect("send stop");
    let summary = daemon.join().expect("daemon thread");

    // One-shot reference: what `frac score --model` pays per record — load
    // the model (CRC + text parse) and score a single row.
    let one_row = test.select_rows(&[0]);
    let mut oneshot_s = f64::INFINITY;
    for _ in 0..reps.max(2) {
        let t0 = Instant::now();
        let m = FracModel::load(&model_path).expect("one-shot load");
        let ns = m.score(&one_row);
        oneshot_s = oneshot_s.min(t0.elapsed().as_secs_f64());
        assert_eq!(ns[0].to_bits(), expected[0], "one-shot path diverged");
    }
    let amortization = batched_rps * oneshot_s;

    eprintln!(
        "serve: single p50 {p50_us}us p99 {p99_us}us over {singles} requests; \
         batched {batched_rps:.0} records/s ({} records in {burst_wall_s:.4}s); \
         one-shot load+score {oneshot_s:.4}s/record → amortization {amortization:.1}x",
        lines.len()
    );
    eprintln!("serve: exit {}", summary.render());
    assert!(
        summary.counts.quarantined == 0 && summary.counts.shed == 0,
        "clean benchmark traffic must not shed or quarantine: {}",
        summary.counts.summary()
    );

    format!(
        "  \"serve\": {{\n    \
         \"surrogate\": {{\"n_features\": {}, \"train_rows\": {}, \"test_rows\": {}}},\n    \
         \"single\": {{\"requests\": {singles}, \"p50_us\": {p50_us}, \"p99_us\": {p99_us}}},\n    \
         \"batched\": {{\"records_per_burst\": {}, \"best_wall_s\": {burst_wall_s:.6}, \
         \"throughput_rps\": {batched_rps:.1}}},\n    \
         \"oneshot\": {{\"load_plus_score_s\": {oneshot_s:.6}, \"rps\": {:.2}}},\n    \
         \"amortization_speedup\": {amortization:.1},\n    \
         \"scores_bit_identical\": true,\n    \
         \"daemon\": \"{}\"\n  }}",
        train.n_features(),
        train.n_rows(),
        test.n_rows(),
        lines.len(),
        1.0 / oneshot_s,
        summary.counts.summary(),
    )
}

/// Per-kernel throughput for one tier, in GFLOP/s on a cache-resident
/// slice (each element of dot/axpy/sq_norm/dot_f32 is one multiply + one
/// add). Long enough to amortize the dispatch load, short enough to stay
/// in L1. Each kernel's window is only tens of milliseconds, so on a
/// shared single-vCPU host a single steal burst can halve one reading —
/// take the best of three interleaved rounds per kernel.
fn kernel_gflops(tier: KernelTier) -> [f64; 4] {
    use std::hint::black_box;
    const LEN: usize = 1024;
    const ITERS: usize = 100_000;
    const ROUNDS: usize = 3;
    let flops = (2 * LEN * ITERS) as f64 / 1e9;
    let x: Vec<f64> = (0..LEN).map(|i| (i as f64 * 0.37).sin()).collect();
    let w: Vec<f64> = (0..LEN).map(|i| (i as f64 * 0.11).cos()).collect();

    let mut best = [0.0f64; 4];
    let mut wbuf = w.clone();
    for _ in 0..ROUNDS {
        let mut acc = 0.0f64;
        let t0 = Instant::now();
        for _ in 0..ITERS {
            acc += kernels::dot_for_tier(tier, black_box(&x), black_box(&w), 0.0);
        }
        best[0] = best[0].max(flops / t0.elapsed().as_secs_f64());
        black_box(acc);

        let t0 = Instant::now();
        for i in 0..ITERS {
            // Alternate the sign so the buffer never drifts out of range.
            let alpha = if i % 2 == 0 { 1e-3 } else { -1e-3 };
            kernels::axpy_for_tier(tier, alpha, black_box(&x), black_box(&mut wbuf));
        }
        best[1] = best[1].max(flops / t0.elapsed().as_secs_f64());
        black_box(&wbuf);

        let mut acc = 0.0f64;
        let t0 = Instant::now();
        for _ in 0..ITERS {
            acc += kernels::sq_norm_for_tier(tier, black_box(&x), 0.0);
        }
        best[2] = best[2].max(flops / t0.elapsed().as_secs_f64());
        black_box(acc);

        let mut acc = 0.0f64;
        let t0 = Instant::now();
        for _ in 0..ITERS {
            acc += kernels::dot_f32_for_tier(tier, black_box(&x), black_box(&w), 0.0);
        }
        best[3] = best[3].max(flops / t0.elapsed().as_secs_f64());
        black_box(acc);
    }
    best
}

/// One timed pooled fit + NS score bits under the currently forced kernel
/// tier / splitter generation.
fn simd_timed(train: &Dataset, test: &Dataset, config: &FracConfig) -> (f64, Vec<f64>) {
    let plan = TrainingPlan::full(train.n_features());
    let t0 = Instant::now();
    let (model, _) = FracModel::fit(train, &plan, config);
    let fit_s = t0.elapsed().as_secs_f64();
    let ns = model.score(test);
    assert!(ns.iter().all(|s| s.is_finite()));
    (fit_s, ns)
}

fn simd_best_of(
    reps: usize,
    train: &Dataset,
    test: &Dataset,
    config: &FracConfig,
) -> (f64, Vec<f64>) {
    let mut best: Option<(f64, Vec<f64>)> = None;
    for _ in 0..reps {
        let s = simd_timed(train, test, config);
        if best.as_ref().is_none_or(|b| s.0 < b.0) {
            best = Some(s);
        }
    }
    best.expect("at least one rep")
}

/// A/B one family: scalar-blocked baseline (portable unrolled tier +
/// legacy per-row splitter) vs the vectorized path (best dispatched tier +
/// gathered splitter). Returns `(json, baseline_ns, vectorized_ns)`.
fn simd_family_json(
    name: &str,
    train: &Dataset,
    test: &Dataset,
    config: &FracConfig,
    reps: usize,
) -> (String, Vec<f64>, Vec<f64>) {
    kernels::force_tier(Some(KernelTier::Unrolled));
    frac_learn::tree::force_legacy_splitter(true);
    frac_learn::solver::force_unpacked_solver(true);
    let (base_s, base_ns) = simd_best_of(reps, train, test, config);
    let vec_tier = kernels::force_tier(None);
    frac_learn::tree::force_legacy_splitter(false);
    frac_learn::solver::force_unpacked_solver(false);
    let (vec_s, vec_ns) = simd_best_of(reps, train, test, config);
    let speedup = base_s / vec_s;
    eprintln!(
        "{name}: fit scalar-blocked {base_s:.3}s vs vectorized[{vec_tier}] {vec_s:.3}s \
         ({speedup:.2}x)"
    );
    let json = format!(
        "  \"{name}\": {{\n    \
         \"surrogate\": {{\"n_features\": {}, \"train_rows\": {}, \"test_rows\": {}}},\n    \
         \"scalar_blocked\": {{\"fit_wall_s\": {base_s:.6}}},\n    \
         \"vectorized\": {{\"fit_wall_s\": {vec_s:.6}, \"tier\": \"{vec_tier}\"}},\n    \
         \"fit_speedup\": {speedup:.3}\n  }}",
        train.n_features(),
        train.n_rows(),
        test.n_rows(),
    );
    (json, base_ns, vec_ns)
}

/// Fraction of positions where the two NS rankings agree exactly.
fn rank_agreement(a: &[f64], b: &[f64]) -> f64 {
    let order = |v: &[f64]| {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&i, &j| v[i].total_cmp(&v[j]).then(i.cmp(&j)));
        idx
    };
    let (oa, ob) = (order(a), order(b));
    let same = oa.iter().zip(&ob).filter(|(x, y)| x == y).count();
    same as f64 / oa.len().max(1) as f64
}

fn max_rel_drift(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y).abs() / (1.0 + x.abs()))
        .fold(0.0f64, f64::max)
}

/// One timed fit + NS scores + the solver counters the fit drove, for the
/// Gram-vs-primal strategy A/B.
struct GramSnapshot {
    fit_s: f64,
    ns: Vec<f64>,
    flops: u64,
    stats: SolverStats,
}

fn gram_timed(
    train: &Dataset,
    test: &Dataset,
    plan: &TrainingPlan,
    config: &FracConfig,
) -> GramSnapshot {
    stats::reset();
    let t0 = Instant::now();
    let (model, report) = FracModel::fit(train, plan, config);
    let fit_s = t0.elapsed().as_secs_f64();
    let ns = model.score(test);
    assert!(ns.iter().all(|s| s.is_finite()));
    GramSnapshot { fit_s, ns, flops: report.flops, stats: stats::snapshot() }
}

fn gram_best_of(
    reps: usize,
    train: &Dataset,
    test: &Dataset,
    plan: &TrainingPlan,
    config: &FracConfig,
) -> GramSnapshot {
    let mut best: Option<GramSnapshot> = None;
    for _ in 0..reps {
        let s = gram_timed(train, test, plan, config);
        if best.as_ref().is_none_or(|b| s.fit_s < b.fit_s) {
            best = Some(s);
        }
    }
    best.expect("at least one rep")
}

fn gram_strategy_json(s: &GramSnapshot) -> String {
    format!(
        "{{\"fit_wall_s\": {:.6}, \"flops\": {}, \"solves\": {}, \"gram_solves\": {}, \
         \"gram_builds\": {}, \"pack_reuses\": {}}}",
        s.fit_s, s.flops, s.stats.solves, s.stats.gram_solves, s.stats.gram_builds,
        s.stats.pack_reuses,
    )
}

/// Time one solver-bound family through the primal, Gram, and auto
/// strategies (all on the fast path) and render its JSON object. When
/// `strict_ref` is set, one strict fit provides the NS ranking reference
/// (the bitwise-reference solver); otherwise the primal fast run does.
fn gram_family_json(
    name: &str,
    train: &Dataset,
    test: &Dataset,
    base: &FracConfig,
    reps: usize,
    strict_ref: bool,
) -> String {
    let plan = TrainingPlan::full(train.n_features());
    let primal = gram_best_of(
        reps,
        train,
        test,
        &plan,
        &(*base).with_solver_strategy(SolverStrategy::Primal),
    );
    let gram =
        gram_best_of(reps, train, test, &plan, &(*base).with_solver_strategy(SolverStrategy::Gram));
    let auto =
        gram_best_of(reps, train, test, &plan, &(*base).with_solver_strategy(SolverStrategy::Auto));
    let speedup = primal.fit_s / gram.fit_s;
    let auto_penalty = auto.fit_s / primal.fit_s.min(gram.fit_s) - 1.0;
    let (ref_name, ref_ns) = if strict_ref {
        let (model, _) = FracModel::fit(train, &plan, &(*base).with_solver_mode(SolverMode::Strict));
        ("strict", model.score(test))
    } else {
        ("primal", primal.ns.clone())
    };
    let primal_ranks = rank_agreement(&ref_ns, &primal.ns);
    let gram_ranks = rank_agreement(&ref_ns, &gram.ns);
    let auto_ranks = rank_agreement(&ref_ns, &auto.ns);
    eprintln!(
        "{name}: fit primal {:.3}s vs gram {:.3}s ({speedup:.2}x), auto {:.3}s \
         ({:+.2}% vs best); gram builds {} / reuses {}; \
         rank agreement vs {ref_name}: primal {primal_ranks:.3}, gram {gram_ranks:.3}, \
         auto {auto_ranks:.3}",
        primal.fit_s,
        gram.fit_s,
        auto.fit_s,
        auto_penalty * 100.0,
        gram.stats.gram_builds,
        gram.stats.pack_reuses,
    );
    format!(
        "  \"{name}\": {{\n    \
         \"surrogate\": {{\"n_features\": {}, \"train_rows\": {}, \"test_rows\": {}}},\n    \
         \"primal\": {},\n    \
         \"gram\": {},\n    \
         \"auto\": {},\n    \
         \"fit_speedup_gram_vs_primal\": {speedup:.3},\n    \
         \"auto_penalty_fraction\": {auto_penalty:.4},\n    \
         \"ranking_reference\": \"{ref_name}\",\n    \
         \"rank_agreement_primal\": {primal_ranks:.4},\n    \
         \"rank_agreement_gram\": {gram_ranks:.4},\n    \
         \"rank_agreement_auto\": {auto_ranks:.4}\n  }}",
        train.n_features(),
        train.n_rows(),
        test.n_rows(),
        gram_strategy_json(&primal),
        gram_strategy_json(&gram),
        gram_strategy_json(&auto),
    )
}

/// Time a bare SVR solve (no FRaC pipeline around it) at one `(n, d)`
/// shape under one strategy: `windows` timing windows of `solves` cold
/// solves each, best window wins. Returns seconds per solve.
fn sweep_solve_s(
    x: &DesignMatrix,
    y: &[f64],
    strategy: SolverStrategy,
    windows: usize,
    solves: usize,
) -> f64 {
    let cfg = SvrConfig {
        tolerance: 1e-4,
        max_epochs: 1000,
        mode: SolverMode::Fast,
        strategy,
        ..SvrConfig::default()
    };
    let trainer = SvrTrainer::new(cfg);
    let mut best = f64::INFINITY;
    for _ in 0..windows {
        let t0 = Instant::now();
        for _ in 0..solves {
            let (model, _) = trainer.train_view_warm(x, y, None);
            std::hint::black_box(model);
        }
        best = best.min(t0.elapsed().as_secs_f64() / solves as f64);
    }
    best
}

/// The d/n sweep: fixed row count, widening feature count, bare SVR solves
/// under each strategy. Locates the measured Gram-vs-primal crossover and
/// checks the auto policy never trails the better strategy by more than
/// 5%. Returns the rendered JSON object.
fn gram_sweep_json(n: usize, dims: &[usize], windows: usize, solves: usize) -> String {
    let mut points = Vec::new();
    let mut crossover: Option<f64> = None;
    for &d in dims {
        // Deterministic pseudo-random data: hash-mix the index so columns
        // are linearly independent-ish without pulling in an RNG.
        let values: Vec<f64> =
            (0..n * d).map(|i| ((i * 7919 + 131) % 104729) as f64 / 52364.5 - 1.0).collect();
        let x = DesignMatrix::from_raw(n, d, values);
        let y: Vec<f64> = (0..n).map(|i| ((i * 6151 + 7) % 104729) as f64 / 52364.5 - 1.0).collect();
        let primal_s = sweep_solve_s(&x, &y, SolverStrategy::Primal, windows, solves);
        let gram_s = sweep_solve_s(&x, &y, SolverStrategy::Gram, windows, solves);
        let auto_s = sweep_solve_s(&x, &y, SolverStrategy::Auto, windows, solves);
        let ratio = d as f64 / n as f64;
        let policy_gram = frac_learn::solver::gram_policy().should_use_gram(n, d);
        let auto_within = auto_s <= 1.05 * primal_s.min(gram_s);
        if crossover.is_none() && gram_s <= primal_s {
            crossover = Some(ratio);
        }
        eprintln!(
            "sweep n={n} d={d} (d/n {ratio:.2}): primal {:.2}us gram {:.2}us auto {:.2}us; \
             policy={} auto_within_5pct={auto_within}",
            primal_s * 1e6,
            gram_s * 1e6,
            auto_s * 1e6,
            if policy_gram { "gram" } else { "primal" },
        );
        points.push(format!(
            "{{\"d\": {d}, \"dn_ratio\": {ratio:.3}, \"primal_solve_s\": {primal_s:.9}, \
             \"gram_solve_s\": {gram_s:.9}, \"auto_solve_s\": {auto_s:.9}, \
             \"policy_picks_gram\": {policy_gram}, \"auto_within_5pct\": {auto_within}}}"
        ));
    }
    let crossover_json = match crossover {
        Some(r) => format!("{r:.3}"),
        None => "null".to_string(),
    };
    eprintln!(
        "sweep: measured gram-wins crossover at d/n {} (policy crossover ratio {})",
        crossover_json,
        frac_learn::solver::gram_policy().crossover_ratio,
    );
    format!(
        "  \"dn_sweep\": {{\n    \"n_rows\": {n},\n    \
         \"policy_crossover_ratio\": {},\n    \
         \"measured_crossover_dn\": {crossover_json},\n    \
         \"points\": [\n      {}\n    ]\n  }}",
        frac_learn::solver::gram_policy().crossover_ratio,
        points.join(",\n      "),
    )
}

/// Peak resident set (`VmHWM`) of this process in kilobytes, read from
/// `/proc/self/status`; 0 where the file is unavailable. VmHWM is a
/// high-water mark — monotone over the process lifetime — so comparisons
/// must order the low-memory path first.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1).and_then(|v| v.parse().ok()))
        })
        .unwrap_or(0)
}

/// Stream a synthetic tall all-real TSV to `path` without materializing a
/// `Dataset` (the point of the oocore family is files bigger than what we
/// want resident). Values come from a xorshift64* stream; roughly 1% of
/// cells are missing. Returns the file size in bytes.
fn write_tall_tsv(path: &std::path::Path, rows: usize, cols: usize) -> std::io::Result<u64> {
    use std::io::Write as _;
    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    for j in 0..cols {
        if j > 0 {
            write!(w, "\t")?;
        }
        write!(w, "g{j}:real")?;
    }
    writeln!(w)?;
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    for r in 0..rows {
        for j in 0..cols {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            let v = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
            if j > 0 {
                write!(w, "\t")?;
            }
            if (r + j) % 97 == 0 {
                write!(w, "?")?;
            } else {
                write!(w, "{:.4}", (v % 2_000_000) as f64 / 100.0 - 10_000.0)?;
            }
        }
        writeln!(w)?;
    }
    w.flush()?;
    Ok(std::fs::metadata(path)?.len())
}

fn main() {
    let n_features = env_usize("FRAC_PERF_FEATURES", 400);
    let n_rows = env_usize("FRAC_PERF_ROWS", 80);
    let reps = env_usize("FRAC_PERF_REPS", 2).max(1);
    let n_test = n_rows;

    const FAMILIES: [&str; 9] =
        ["fit", "solver", "journal", "shard", "telemetry", "serve", "simd", "gram", "oocore"];
    let mut selected: Vec<String> = Vec::new();
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--family" => {
                let v = argv.next().unwrap_or_else(|| {
                    eprintln!("--family wants a value ({})", FAMILIES.join(" | "));
                    std::process::exit(2);
                });
                if !FAMILIES.contains(&v.as_str()) {
                    eprintln!("unknown family `{v}` ({})", FAMILIES.join(" | "));
                    std::process::exit(2);
                }
                selected.push(v);
            }
            other => {
                eprintln!(
                    "unknown argument `{other}` \
                     (usage: perfsnapshot [--family {}]...)",
                    FAMILIES.join("|")
                );
                std::process::exit(2);
            }
        }
    }
    // No flag → every family, preserving the original all-in-one snapshot.
    let run = |name: &str| selected.is_empty() || selected.iter().any(|f| f == name);

    eprintln!("perfsnapshot: {n_features} features x {n_rows} train rows, best of {reps}");

    let (expr, _) = ExpressionGenerator::new(ExpressionConfig {
        n_features,
        n_modules: 12,
        relevant_fraction: 0.8,
        anomaly_modules: 3,
        anomaly_shift: 2.5,
        noise_sd: 0.6,
        structure_seed: 42,
        ..ExpressionConfig::default()
    })
    .generate(n_rows, n_test, 9);
    let expr_train = expr.select_rows(&(0..n_rows).collect::<Vec<_>>());
    let expr_test = expr.select_rows(&(n_rows..n_rows + n_test).collect::<Vec<_>>());

    let (snp, _) = SnpGenerator::new(SnpConfig {
        n_snps: n_features,
        n_subpops: 2,
        fst: 0.1,
        n_disease_loci: n_features / 20,
        disease_effect: 0.2,
        structure_seed: 42,
        ..SnpConfig::default()
    })
    .generate(
        &[
            CohortGroup { n: n_rows, mix: SubpopulationMix::uniform(2), is_case: false },
            CohortGroup { n: n_test, mix: SubpopulationMix::uniform(2), is_case: true },
        ],
        9,
    );
    let snp_train = snp.select_rows(&(0..n_rows).collect::<Vec<_>>());
    let snp_test = snp.select_rows(&(n_rows..n_rows + n_test).collect::<Vec<_>>());

    if run("fit") {
        let expr_json =
            family_json("expression", &expr_train, &expr_test, &FracConfig::expression(), reps);
        let snp_json = family_json("snp", &snp_train, &snp_test, &FracConfig::snp(), reps);
        // Encode-bound family: constant predictors make training trivial, so
        // the fit wall is dominated by design-matrix construction — the
        // component the pool replaces. This isolates the O(f² · n) → O(f · n)
        // change from solver time, which dominates the two paper families at
        // this scale.
        let encode_cfg =
            FracConfig { real_model: RealModel::Constant, ..FracConfig::default() };
        let encode_json =
            family_json("encode_bound", &expr_train, &expr_test, &encode_cfg, reps);

        let json = format!("{{\n{expr_json},\n{snp_json},\n{encode_json}\n}}\n");
        std::fs::write("BENCH_fit.json", &json).expect("write BENCH_fit.json");
        println!("{json}");
    }

    // Solver-bound families: tight stopping tolerance with a high epoch cap
    // makes the dual coordinate-descent solves dominate the fit wall, which
    // is what the fast solver path (shrinking + warm starts + blocked
    // kernels) targets. Smaller surrogates than the encode bench keep the
    // strict reference tractable.
    let n_solver = env_usize("FRAC_PERF_SOLVER_FEATURES", 160);
    let n_solver_rows = n_rows.min(60);

    eprintln!("solver bench: {n_solver} features x {n_solver_rows} train rows, best of {reps}");

    let (sexpr, _) = ExpressionGenerator::new(ExpressionConfig {
        n_features: n_solver,
        n_modules: 8,
        relevant_fraction: 0.8,
        anomaly_modules: 2,
        anomaly_shift: 2.5,
        noise_sd: 0.6,
        structure_seed: 43,
        ..ExpressionConfig::default()
    })
    .generate(n_solver_rows, n_solver_rows, 10);
    let sexpr_train = sexpr.select_rows(&(0..n_solver_rows).collect::<Vec<_>>());
    let sexpr_test =
        sexpr.select_rows(&(n_solver_rows..2 * n_solver_rows).collect::<Vec<_>>());

    let (ssnp, _) = SnpGenerator::new(SnpConfig {
        n_snps: n_solver,
        n_subpops: 2,
        fst: 0.1,
        n_disease_loci: n_solver / 20,
        disease_effect: 0.2,
        structure_seed: 43,
        ..SnpConfig::default()
    })
    .generate(
        &[
            CohortGroup { n: n_solver_rows, mix: SubpopulationMix::uniform(2), is_case: false },
            CohortGroup { n: n_solver_rows, mix: SubpopulationMix::uniform(2), is_case: true },
        ],
        10,
    );
    let ssnp_train = ssnp.select_rows(&(0..n_solver_rows).collect::<Vec<_>>());
    let ssnp_test = ssnp.select_rows(&(n_solver_rows..2 * n_solver_rows).collect::<Vec<_>>());

    let svr_cfg = FracConfig {
        real_model: RealModel::Svr(SvrConfig {
            tolerance: 1e-4,
            max_epochs: 1000,
            ..SvrConfig::default()
        }),
        ..FracConfig::default()
    };
    let svc_cfg = FracConfig {
        cat_model: CatModel::Svc(SvcConfig {
            tolerance: 1e-4,
            max_epochs: 1000,
            ..SvcConfig::default()
        }),
        ..FracConfig::snp()
    };

    if run("solver") {
        let sexpr_json =
            solver_family_json("expression_svr", &sexpr_train, &sexpr_test, &svr_cfg, reps);
        let ssnp_json = solver_family_json("snp_svc", &ssnp_train, &ssnp_test, &svc_cfg, reps);

        let solver_json = format!("{{\n{sexpr_json},\n{ssnp_json}\n}}\n");
        std::fs::write("BENCH_solver.json", &solver_json).expect("write BENCH_solver.json");
        println!("{solver_json}");
    }

    if run("journal") {
        // Journal overhead: the same fit with every completed target appended
        // (checksummed + fsynced) to the write-ahead journal. The checkpoint
        // write is one frame per *target*, so its cost amortizes over the
        // target's whole ensemble fit; the budget is < 3% wall overhead.
        let expr_journal = journal_family_json(
            "expression",
            &expr_train,
            &expr_test,
            &FracConfig::expression(),
            reps,
        );
        let snp_journal =
            journal_family_json("snp", &snp_train, &snp_test, &FracConfig::snp(), reps);
        let journal_json = format!("{{\n{expr_journal},\n{snp_journal}\n}}\n");
        std::fs::write("BENCH_journal.json", &journal_json).expect("write BENCH_journal.json");
        println!("{journal_json}");
    }

    if run("shard") {
        // Shard scaling: the same fit split round-robin over 1/2/4 in-process
        // workers (one journal each) and merged back. On this host the win is
        // crash isolation, not parallel speedup — the number that matters is
        // the overhead of journaling per shard plus the merge wall, and that
        // the merged NS stays bit-identical to the single-process run.
        let snp_shard =
            shard_family_json("snp", &snp_train, &snp_test, &FracConfig::snp(), reps);
        let shard_json = format!("{{\n{snp_shard}\n}}\n");
        std::fs::write("BENCH_shard.json", &shard_json).expect("write BENCH_shard.json");
        println!("{shard_json}");
    }

    if run("telemetry") {
        // Telemetry overhead: the same fit + score with a live session
        // draining span records vs the disabled probes (one relaxed atomic
        // load each). Budget: ≤ 1% fit overhead, and the traced scores must
        // be bit-identical to the untraced ones — recording may observe the
        // run, never steer it.
        let expr_tele = telemetry_family_json(
            "expression",
            &expr_train,
            &expr_test,
            &FracConfig::expression(),
            reps,
        );
        let snp_tele =
            telemetry_family_json("snp", &snp_train, &snp_test, &FracConfig::snp(), reps);
        let tele_json = format!("{{\n{expr_tele},\n{snp_tele}\n}}\n");
        std::fs::write("BENCH_telemetry.json", &tele_json).expect("write BENCH_telemetry.json");
        println!("{tele_json}");
    }

    if run("serve") {
        // The serving daemon vs one-shot scoring: single-record p50/p99
        // through a resident TCP daemon, batched throughput over the test
        // set, and the amortization factor over reloading the model per
        // record. Scores must stay bit-identical to the direct path.
        let serve_json =
            serve_family_json(&expr_train, &expr_test, &FracConfig::expression(), reps);
        let json = format!("{{\n{serve_json}\n}}\n");
        std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
        println!("{json}");
    }

    if run("simd") {
    // SIMD kernel tier: per-kernel throughput for every supported tier,
    // then the whole-fit A/B — scalar-blocked baseline (portable unrolled
    // kernels + legacy per-row splitter) vs the vectorized path (best
    // dispatched tier + gathered splitter) — on the tree_grow-bound SNP
    // family and the solve-bound expression family. Runs after the timing
    // families above because the A/B forces process-global knobs.
    let avx2_ok = KernelTier::Avx2Fma.supported();
    eprintln!(
        "simd bench: dispatched tier {}, avx2+fma supported: {avx2_ok}",
        kernels::active_tier()
    );
    let kernel_names = ["dot", "axpy", "sq_norm", "dot_f32"];
    let unrolled = kernel_gflops(KernelTier::Unrolled);
    let vector = if avx2_ok { Some(kernel_gflops(KernelTier::Avx2Fma)) } else { None };
    let kernel_rows: Vec<String> = kernel_names
        .iter()
        .enumerate()
        .map(|(k, name)| {
            let base = unrolled[k];
            match vector {
                Some(v) => {
                    eprintln!(
                        "kernel {name}: unrolled {base:.2} GFLOP/s, avx2+fma {:.2} GFLOP/s \
                         ({:.2}x)",
                        v[k],
                        v[k] / base
                    );
                    format!(
                        "\"{name}\": {{\"unrolled_gflops\": {base:.3}, \
                         \"avx2_fma_gflops\": {:.3}, \"speedup\": {:.3}}}",
                        v[k],
                        v[k] / base
                    )
                }
                None => format!("\"{name}\": {{\"unrolled_gflops\": {base:.3}}}"),
            }
        })
        .collect();

    let (snp_simd, snp_base_ns, snp_vec_ns) =
        simd_family_json("snp", &snp_train, &snp_test, &FracConfig::snp(), reps);
    // Tree fits never touch the reduction kernels and the gathered splitter
    // is result-identical, so the SNP A/B must not move a single NS bit.
    assert_eq!(
        snp_base_ns.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        snp_vec_ns.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "SNP scores must be bit-identical across splitter generations"
    );
    // The solver families above stay small so the strict reference remains
    // tractable, but the SIMD A/B never runs strict — both sides take the
    // fast path — so it can afford a wider expression surrogate whose dot
    // segments actually amortize the vector kernels.
    let n_simd = env_usize("FRAC_PERF_SIMD_FEATURES", 320);
    eprintln!("simd expression surrogate: {n_simd} features x {n_rows} train rows");
    let (wexpr, _) = ExpressionGenerator::new(ExpressionConfig {
        n_features: n_simd,
        n_modules: 8,
        relevant_fraction: 0.8,
        anomaly_modules: 2,
        anomaly_shift: 2.5,
        noise_sd: 0.6,
        structure_seed: 43,
        ..ExpressionConfig::default()
    })
    .generate(n_rows, n_rows, 10);
    let wexpr_train = wexpr.select_rows(&(0..n_rows).collect::<Vec<_>>());
    let wexpr_test = wexpr.select_rows(&(n_rows..2 * n_rows).collect::<Vec<_>>());

    // Expression fits are ~1s a side — small enough for steal-time bursts
    // to swing a best-of-2, so this family always takes at least three reps.
    let (expr_simd, expr_base_ns, expr_vec_ns) =
        simd_family_json("expression_svr", &wexpr_train, &wexpr_test, &svr_cfg, reps.max(3));
    let expr_tier_drift = max_rel_drift(&expr_base_ns, &expr_vec_ns);
    eprintln!("expression_svr: NS drift across tiers {expr_tier_drift:.2e}");

    // f32-compute mode on the solve-bound family: gradient dots in f32
    // with f64 accumulation, under the vectorized tier. Reported as NS
    // drift + rank agreement against the full-precision fast path.
    let (f64_s, f64_ns) = simd_best_of(reps.max(3), &wexpr_train, &wexpr_test, &svr_cfg);
    let (f32_s, f32_ns) =
        simd_best_of(reps.max(3), &wexpr_train, &wexpr_test, &svr_cfg.with_fast_f32(true));
    let f32_drift = max_rel_drift(&f64_ns, &f32_ns);
    let f32_ranks = rank_agreement(&f64_ns, &f32_ns);
    eprintln!(
        "f32 mode: fit f64 {f64_s:.3}s vs f32 {f32_s:.3}s; NS drift {f32_drift:.2e}; \
         rank agreement {f32_ranks:.3}"
    );

    let simd_json = format!(
        "{{\n  \"dispatch\": {{\"selected_tier\": \"{}\", \"avx2_fma_supported\": {avx2_ok}}},\n  \
         \"kernels\": {{{}}},\n{snp_simd},\n{expr_simd},\n  \
         \"f32_mode\": {{\"fit_wall_s_f64\": {f64_s:.6}, \"fit_wall_s_f32\": {f32_s:.6}, \
         \"max_rel_ns_drift\": {f32_drift:.3e}, \"rank_agreement\": {f32_ranks:.4}, \
         \"cross_tier_ns_drift\": {expr_tier_drift:.3e}}}\n}}\n",
        kernels::active_tier(),
        kernel_rows.join(", "),
    );
    std::fs::write("BENCH_simd.json", &simd_json).expect("write BENCH_simd.json");
    println!("{simd_json}");
    }

    if run("gram") {
        // Gram-matrix dual strategy: primal vs Gram vs auto on the same
        // solver-bound configurations as BENCH_solver but at full surrogate
        // width (n ≪ d is the regime the strategy targets), plus a bare-
        // solver d/n sweep that locates the measured crossover. The SNP
        // family anchors its NS rankings to the strict reference solver;
        // expression (every target an SVR solve, ~6x more fits) anchors to
        // the primal fast path to keep the strict side tractable.
        let gram_reps = reps.max(3);
        eprintln!(
            "gram bench: {n_features} features x {n_rows} train rows, best of {gram_reps}"
        );
        let snp_gram =
            gram_family_json("snp_svc", &snp_train, &snp_test, &svc_cfg, gram_reps, true);
        let expr_gram = gram_family_json(
            "expression_svr",
            &expr_train,
            &expr_test,
            &svr_cfg,
            gram_reps,
            false,
        );
        // Tight-tolerance agreement: the timing families above run at the
        // solver-bound 1e-4 tolerance, where fast and strict stop at
        // slightly different points and near-tie NS ranks can swap — for
        // primal exactly as for Gram (compare their rank_agreement
        // fields). At 1e-6 both solvers reach the same optimum, so the
        // Gram rankings must match the strict reference exactly. Uses the
        // solver-bench surrogate: a strict 400-feature fit at 1e-6 is not
        // wall-tractable on this host.
        let tight_svc = FracConfig {
            cat_model: CatModel::Svc(SvcConfig {
                tolerance: 1e-6,
                max_epochs: 10_000,
                ..SvcConfig::default()
            }),
            ..FracConfig::snp()
        };
        let tight_plan = TrainingPlan::full(ssnp_train.n_features());
        let (strict_model, _) = FracModel::fit(
            &ssnp_train,
            &tight_plan,
            &tight_svc.with_solver_mode(SolverMode::Strict),
        );
        let strict_ns = strict_model.score(&ssnp_test);
        let (gram_model, _) = FracModel::fit(
            &ssnp_train,
            &tight_plan,
            &tight_svc.with_solver_strategy(SolverStrategy::Gram),
        );
        let gram_ns = gram_model.score(&ssnp_test);
        let tight_agreement = rank_agreement(&strict_ns, &gram_ns);
        eprintln!(
            "tight agreement ({}x{} snp svc, tol 1e-6): gram vs strict rank agreement \
             {tight_agreement:.4}",
            ssnp_train.n_features(),
            ssnp_train.n_rows(),
        );
        let agreement_json = format!(
            "  \"strict_agreement_check\": {{\"n_features\": {}, \"train_rows\": {}, \
             \"tolerance\": 1e-6, \"rank_agreement_gram_vs_strict\": {tight_agreement:.4}}}",
            ssnp_train.n_features(),
            ssnp_train.n_rows(),
        );
        let sweep = gram_sweep_json(48, &[16, 48, 96, 192, 384], 5, 12);
        let gram_json =
            format!("{{\n{snp_gram},\n{expr_gram},\n{agreement_json},\n{sweep}\n}}\n");
        std::fs::write("BENCH_gram.json", &gram_json).expect("write BENCH_gram.json");
        println!("{gram_json}");
    }

    if run("oocore") {
        // Out-of-core FCB path: (a) chunked pack keeps its encode buffer
        // bounded regardless of file size, (b) opening the packed file
        // (mmap + full CRC verification, which touches every page) beats
        // re-parsing the TSV, (c) the mapped path adds no heap proportional
        // to the data, and (d) an FCB-trained model scores bit-identically
        // to a TSV-trained one.
        let oo_rows = env_usize("FRAC_PERF_OOCORE_ROWS", 150_000);
        let oo_cols = env_usize("FRAC_PERF_OOCORE_COLS", 24);
        let oo_chunk = env_usize("FRAC_PERF_OOCORE_CHUNK", 4096);
        eprintln!(
            "oocore bench: {oo_rows} rows x {oo_cols} real columns, chunk {oo_chunk} rows, \
             best of {reps}"
        );
        let dir = std::env::temp_dir().join(format!("frac-perf-oocore-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("oocore scratch dir");
        let tsv_path = dir.join("tall.tsv");
        let fcb_path = dir.join("tall.fcb");
        let tsv_bytes = write_tall_tsv(&tsv_path, oo_rows, oo_cols).expect("write tall TSV");

        let t0 = Instant::now();
        let stats =
            frac_dataset::fcb::pack_tsv(&tsv_path, &fcb_path, oo_chunk).expect("pack tall TSV");
        let pack_s = t0.elapsed().as_secs_f64();
        let buffer_ratio = stats.file_bytes as f64 / stats.peak_buffer_bytes.max(1) as f64;

        // VmHWM is monotone, so the low-memory path must run first: any
        // high-water growth observed after the TSV reps belongs to the
        // parse alone.
        let rss_before_load_kb = peak_rss_kb();
        let mut open_s = f64::INFINITY;
        let mut mapped = None;
        for _ in 0..reps {
            let t = Instant::now();
            let d = frac_dataset::fcb::FcbFile::open(&fcb_path).expect("open packed").dataset();
            assert_eq!(d.n_rows(), oo_rows);
            open_s = open_s.min(t.elapsed().as_secs_f64());
            mapped = Some(d);
        }
        let rss_after_mmap_kb = peak_rss_kb();
        let mut parse_s = f64::INFINITY;
        let mut parsed = None;
        for _ in 0..reps {
            let t = Instant::now();
            let d = frac_dataset::io::read_tsv(&tsv_path).expect("parse tall TSV");
            assert_eq!(d.n_rows(), oo_rows);
            parse_s = parse_s.min(t.elapsed().as_secs_f64());
            parsed = Some(d);
        }
        let rss_after_parse_kb = peak_rss_kb();
        assert_eq!(
            mapped.unwrap().fingerprint(),
            parsed.unwrap().fingerprint(),
            "mapped FCB content must match parsed TSV content"
        );
        let load_speedup = parse_s / open_s;
        eprintln!(
            "pack {pack_s:.3}s ({} file bytes, peak buffer {} bytes, {buffer_ratio:.0}x); \
             mmap open {open_s:.4}s vs tsv parse {parse_s:.4}s ({load_speedup:.1}x); \
             peak rss {rss_before_load_kb} -> {rss_after_mmap_kb} -> {rss_after_parse_kb} kB",
            stats.file_bytes, stats.peak_buffer_bytes,
        );

        // NS bit-identity on a small surrogate trained both ways (fitting
        // the tall dataset itself is a fit benchmark, not a storage one).
        let (surr, _) = ExpressionGenerator::new(ExpressionConfig {
            n_features: 24,
            n_modules: 4,
            relevant_fraction: 0.9,
            anomaly_modules: 2,
            anomaly_shift: 3.0,
            noise_sd: 0.5,
            structure_seed: 77,
            ..ExpressionConfig::default()
        })
        .generate(36, 6, 7);
        let surr_train = surr.select_rows(&(0..30).collect::<Vec<_>>());
        let surr_test = surr.select_rows(&(30..42).collect::<Vec<_>>());
        let surr_tsv = dir.join("surr.tsv");
        let surr_fcb = dir.join("surr.fcb");
        frac_dataset::io::write_tsv(&surr_train, &surr_tsv).expect("write surrogate TSV");
        frac_dataset::fcb::pack_tsv(&surr_tsv, &surr_fcb, 8).expect("pack surrogate");
        let from_tsv = frac_dataset::io::read_tsv(&surr_tsv).expect("parse surrogate");
        let from_fcb = frac_dataset::fcb::FcbFile::open(&surr_fcb).expect("open surrogate");
        let surr_plan = TrainingPlan::full(surr_train.n_features());
        let surr_cfg = FracConfig::default();
        let (m_tsv, _) = FracModel::fit(&from_tsv, &surr_plan, &surr_cfg);
        let (m_fcb, _) = FracModel::fit(&from_fcb.dataset(), &surr_plan, &surr_cfg);
        let ns_tsv = m_tsv.score(&surr_test);
        let ns_fcb = m_fcb.score(&surr_test);
        let ns_identical =
            ns_tsv.iter().zip(&ns_fcb).all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(ns_identical, "FCB-trained NS must be bit-identical to TSV-trained NS");
        eprintln!("ns bits identical to tsv path: {ns_identical}");

        let oocore_json = format!(
            "{{\n  \"dataset\": {{\"rows\": {oo_rows}, \"real_columns\": {oo_cols}, \
             \"tsv_bytes\": {tsv_bytes}, \"fcb_bytes\": {}}},\n  \
             \"pack\": {{\"wall_s\": {pack_s:.6}, \"chunk_rows\": {}, \
             \"peak_buffer_bytes\": {}, \"file_to_buffer_ratio\": {buffer_ratio:.1}}},\n  \
             \"load\": {{\"mmap_open_s\": {open_s:.6}, \"tsv_parse_s\": {parse_s:.6}, \
             \"mmap_speedup\": {load_speedup:.2}}},\n  \
             \"peak_rss_kb\": {{\"before_load\": {rss_before_load_kb}, \
             \"after_mmap_open\": {rss_after_mmap_kb}, \
             \"after_tsv_parse\": {rss_after_parse_kb}}},\n  \
             \"ns_bits_identical_to_tsv\": {ns_identical}\n}}\n",
            stats.file_bytes, stats.chunk_rows, stats.peak_buffer_bytes,
        );
        std::fs::write("BENCH_oocore.json", &oocore_json).expect("write BENCH_oocore.json");
        println!("{oocore_json}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
