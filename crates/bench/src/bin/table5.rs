//! Table V — scalable methods on the schizophrenia data set.
//!
//! The paper's protocol (§III-A): a *fixed* split — 270 HapMap-style normal
//! training samples; test = 10 held-out normals + 54 cases whose ancestry
//! differs from the training mix (confounded with case status). Full FRaC
//! was never run; time/memory fractions are against the Table II
//! extrapolation from the autism run.
//!
//! Methods: entropy filtering (p=.05), ensemble of random filtering
//! (10 × p=.05), and JL pre-projection at the scaled equivalents of
//! 1024/2048/4096 components. AUCs are raw (not fractions); random/JL rows
//! carry a standard deviation over reruns with different seeds.
//!
//! ```text
//! cargo run -p frac-bench --release --bin table5
//! ```

use frac_bench::dataset_for;
use frac_core::{run_variant, FeatureSelector, FracConfig, Variant};
use frac_dataset::split::derive_seed;
use frac_eval::auc::auc_from_scores;
use frac_eval::experiments::{config_for, extrapolate_full_run, jl_dim_for};
use frac_eval::tables::{fmt_auc_sd, fmt_frac, Table};
use frac_projection::JlMatrixKind;
use frac_synth::registry::make_fixed_split;

/// Runs of stochastic methods used to estimate the AUC spread.
fn n_reruns() -> usize {
    if std::env::var("FRAC_FAST").is_ok_and(|v| v == "1") {
        2
    } else {
        std::env::var("FRAC_RERUNS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(3)
    }
}

fn main() {
    let (spec, _) = dataset_for("schizophrenia");
    let (train, test) = make_fixed_split(spec.default_seed);
    let cfg = config_for(&spec);
    let reruns = n_reruns();

    // ---- extrapolated full-run baseline (paper Table II, italic row) ----
    let (autism_spec, autism_ld) = dataset_for("autism");
    let autism_cfg = config_for(&autism_spec);
    let autism_train_rows: Vec<usize> = autism_ld
        .normal_indices()
        .into_iter()
        .take(autism_ld.n_normal() * 2 / 3)
        .collect();
    let autism_train = autism_ld.data.select_rows(&autism_train_rows);
    let autism_test = autism_ld.data.select_rows(&[0]); // scoring cost negligible
    eprintln!("measuring autism full run for extrapolation…");
    let autism_full = run_variant(&autism_train, &autism_test, &Variant::Full, &autism_cfg);
    let full_est = extrapolate_full_run(
        &autism_full.resources,
        (autism_spec.n_features(), autism_train.n_rows()),
        (spec.n_features(), train.n_rows()),
    );
    eprintln!(
        "extrapolated schizophrenia full run: {:.3e} flops, {:.3e} bytes",
        full_est.flops, full_est.peak_bytes
    );

    let mut table = Table::new(
        "TABLE V — schizophrenia: raw AUC; time/memory as fractions of the extrapolated full run",
        &["method", "AUC", "Time %", "Mem %"],
    );

    let mut run_method = |name: String, variant: &Variant, stochastic: bool| {
        let runs = if stochastic { reruns } else { 1 };
        let mut aucs = Vec::with_capacity(runs);
        let mut flops = 0.0f64;
        let mut peak = 0.0f64;
        for r in 0..runs {
            let run_cfg = FracConfig {
                seed: derive_seed(cfg.seed, 0x7AB5 + r as u64),
                ..cfg
            };
            let out = run_variant(&train, &test.data, variant, &run_cfg);
            aucs.push(auc_from_scores(&out.ns, &test.labels));
            flops += out.resources.flops as f64 / runs as f64;
            peak += out.resources.peak_bytes() as f64 / runs as f64;
        }
        let mean = aucs.iter().sum::<f64>() / aucs.len() as f64;
        let sd = frac_dataset::stats::std_dev(&aucs).unwrap_or(f64::NAN);
        let sd_txt = if stochastic {
            fmt_auc_sd(mean, sd)
        } else {
            format!("{mean:.2} (N/A)")
        };
        eprintln!("{name}: AUC {mean:.3}");
        table.add_row(vec![
            name,
            sd_txt,
            fmt_frac(flops / full_est.flops),
            fmt_frac(peak / full_est.peak_bytes),
        ]);
    };

    run_method(
        "Entropy Filtering".into(),
        &Variant::FullFilter { selector: FeatureSelector::Entropy, p: 0.05 },
        false,
    );
    run_method(
        "Ensemble of Random Filtering".into(),
        &Variant::Ensemble {
            base: Box::new(Variant::FullFilter { selector: FeatureSelector::Random, p: 0.05 }),
            members: 10,
        },
        true,
    );
    for paper_dim in [1024usize, 2048, 4096] {
        let dim = jl_dim_for(&spec, paper_dim);
        run_method(
            format!("JL, {paper_dim} comps (scaled d={dim})"),
            &Variant::JlProject { dim, kind: JlMatrixKind::Gaussian },
            true,
        );
    }

    println!("\n{}", table.render());
    println!(
        "Paper Table V reference: Entropy 1.00, Random ensemble 0.86 (0.01), \
         JL 0.55/0.63/0.64 (rising with d)."
    );
}
