//! Surrogate calibration helper: runs full FRaC on every replicated data
//! set and prints measured AUC next to the paper's Table II target, plus
//! wall time — the tool used to tune the generators' signal strengths.
//!
//! ```text
//! cargo run -p frac-bench --release --bin calibrate [dataset ...]
//! ```

use frac_bench::{dataset_for, n_replicates, run_method, REPLICATED_DATASETS};
use frac_core::Variant;
use frac_eval::tables::{fmt_flops, Table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let names: Vec<&str> = if args.is_empty() {
        REPLICATED_DATASETS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    let n_reps = n_replicates();
    let mut table = Table::new(
        format!("Calibration: full FRaC, {n_reps} replicates"),
        &["data set", "AUC (sd)", "paper AUC", "flops", "wall s/rep"],
    );
    for name in names {
        let (spec, ld) = dataset_for(name);
        let t0 = std::time::Instant::now();
        let agg = run_method(&ld, &spec, &Variant::Full, n_reps);
        let elapsed = t0.elapsed().as_secs_f64() / n_reps as f64;
        table.add_row(vec![
            name.to_string(),
            format!("{:.3} ({:.3})", agg.mean_auc, agg.sd_auc),
            spec.paper_auc.map_or("N/A".into(), |a| format!("{a:.2}")),
            fmt_flops(agg.mean_flops),
            format!("{elapsed:.1}"),
        ]);
        // Print incrementally so long runs show progress.
        println!("{name}: AUC {:.3} (paper {:?}), {:.1}s/rep", agg.mean_auc, spec.paper_auc, elapsed);
    }
    println!("\n{}", table.render());
}
