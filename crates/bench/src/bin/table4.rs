//! Table IV — Diverse FRaC (p = ½) and Diverse Ensemble (10 × p = 1/20,
//! median) as fractions of the full run.
//!
//! ```text
//! cargo run -p frac-bench --release --bin table4
//! ```

use frac_bench::{dataset_for, full_baseline, n_replicates, run_method, REPLICATED_DATASETS};
use frac_eval::experiments::paper_method_roster;
use frac_eval::tables::{fmt_frac, Table};

fn main() {
    let n_reps = n_replicates();
    let mut table = Table::new(
        format!("TABLE IV — fractions of the full run, {n_reps} replicates"),
        &[
            "data set",
            "Diverse AUC%", "Diverse Time%", "Diverse Mem%",
            "DivEns AUC%", "DivEns Time%", "DivEns Mem%",
        ],
    );
    let mut sums = [0.0f64; 6];
    for name in REPLICATED_DATASETS {
        let (spec, ld) = dataset_for(name);
        eprintln!("{name}: full baseline…");
        let full = full_baseline(name, n_reps);
        let roster = paper_method_roster(&spec);
        // Roster entries 3, 4 are Diverse and Diverse Ensemble.
        let mut row = vec![name.to_string()];
        for (i, m) in roster[3..5].iter().enumerate() {
            eprintln!("{name}: {}…", m.name);
            let agg = run_method(&ld, &spec, &m.variant, n_reps);
            let auc_pct = agg.auc_fraction_of(&full);
            let time_pct = agg.time_fraction_of(&full);
            let mem_pct = agg.mem_fraction_of(&full);
            let sd_pct = agg.sd_auc / full.mean_auc;
            row.push(format!("{auc_pct:.2} ({sd_pct:.2})"));
            row.push(fmt_frac(time_pct));
            row.push(fmt_frac(mem_pct));
            sums[i * 3] += auc_pct;
            sums[i * 3 + 1] += time_pct;
            sums[i * 3 + 2] += mem_pct;
        }
        table.add_row(row);
    }
    let n = REPLICATED_DATASETS.len() as f64;
    let mut avg_row = vec!["Avg".to_string()];
    for (i, s) in sums.iter().enumerate() {
        if i % 3 == 0 {
            avg_row.push(format!("{:.2}", s / n));
        } else {
            avg_row.push(fmt_frac(s / n));
        }
    }
    table.add_row(avg_row);

    println!("\n{}", table.render());
    println!(
        "Paper Table IV averages: Diverse 1.01 / 0.346 / 0.641; Diverse Ensemble\n\
         1.02 / 0.365 / 0.543. Expected shape: AUC fully preserved, but time/memory\n\
         only roughly halved — too costly for large data sets (the paper's conclusion)."
    );
}
