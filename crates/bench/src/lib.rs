//! # frac-bench
//!
//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation section. One binary per artifact:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table1` | Table I — data-set inventory |
//! | `table2` | Table II — full FRaC: AUC, time, memory (+ extrapolated schizophrenia) |
//! | `table3` | Table III — random-filter ensemble, JL, entropy filter (fractions of full) |
//! | `table4` | Table IV — Diverse and Diverse ensemble (fractions of full) |
//! | `table5` | Table V — schizophrenia: entropy, random ensemble, JL sweep |
//! | `fig3`   | Fig. 3 — JL AUC vs projected dimension on schizophrenia |
//! | `ablations` | §II/§III design-choice ablations (partial vs full filtering, selector, JL matrix kind, tree-vs-SVM on SNPs, ensemble size) |
//! | `calibrate` | surrogate-tuning helper: full-FRaC AUC per data set |
//!
//! Criterion microbenches live in `benches/`.
//!
//! Environment knobs: `FRAC_REPLICATES` (default 5) and `FRAC_FAST=1`
//! (one replicate, for smoke-testing the harness).

#![warn(missing_docs)]

use frac_core::{FracConfig, Variant};
use frac_eval::replicates::{aggregate, run_replicates, Aggregate};
use frac_eval::{config_for, MethodSpec};
use frac_synth::registry::{make_dataset, spec, DatasetSpec, LabeledDataset};

/// Number of replicates to run: `FRAC_REPLICATES`, or 1 under `FRAC_FAST`,
/// else the paper's 5.
pub fn n_replicates() -> usize {
    if std::env::var("FRAC_FAST").is_ok_and(|v| v == "1") {
        return 1;
    }
    std::env::var("FRAC_REPLICATES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5)
}

/// The seven data sets with replicated protocols (Tables II–IV); the
/// schizophrenia data set uses its fixed split instead (Table V).
pub const REPLICATED_DATASETS: [&str; 7] = [
    "breast.basal",
    "biomarkers",
    "ethnic",
    "bild",
    "smokers2",
    "hematopoiesis",
    "autism",
];

/// A fully evaluated method on one data set.
pub struct MethodRun {
    /// Method display name.
    pub name: &'static str,
    /// Aggregated replicate statistics.
    pub agg: Aggregate,
}

/// Generate a data set's surrogate, deterministic per name.
pub fn dataset_for(name: &str) -> (DatasetSpec, LabeledDataset) {
    let s = spec(name);
    let ld = make_dataset(name, s.default_seed);
    (s, ld)
}

/// Run a variant with the paper's per-data-set settings and aggregate.
pub fn run_method(
    ld: &LabeledDataset,
    spec: &DatasetSpec,
    variant: &Variant,
    n_reps: usize,
) -> Aggregate {
    let cfg = config_for(spec);
    aggregate(&run_replicates(ld, variant, &cfg, n_reps, spec.default_seed ^ 0x5EED))
}

/// Run a roster of methods against the same data set.
pub fn run_roster(
    ld: &LabeledDataset,
    spec: &DatasetSpec,
    roster: &[MethodSpec],
    n_reps: usize,
) -> Vec<MethodRun> {
    roster
        .iter()
        .map(|m| MethodRun { name: m.name, agg: run_method(ld, spec, &m.variant, n_reps) })
        .collect()
}

/// The full-FRaC baseline configuration for a spec (used by several bins).
pub fn full_config(spec: &DatasetSpec) -> FracConfig {
    config_for(spec)
}

/// Directory where bench binaries cache expensive baseline runs.
fn cache_dir() -> std::path::PathBuf {
    let dir = std::path::PathBuf::from(
        std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into()),
    )
    .join("frac-results");
    std::fs::create_dir_all(&dir).ok();
    dir
}

fn write_aggregate(path: &std::path::Path, agg: &Aggregate) {
    let body = format!(
        "mean_auc={}\nsd_auc={}\nmean_flops={}\nmean_peak_bytes={}\nmean_wall_s={}\nn={}\n",
        agg.mean_auc, agg.sd_auc, agg.mean_flops, agg.mean_peak_bytes, agg.mean_wall_s, agg.n
    );
    std::fs::write(path, body).ok();
}

fn read_aggregate(path: &std::path::Path) -> Option<Aggregate> {
    let body = std::fs::read_to_string(path).ok()?;
    let mut map = std::collections::HashMap::new();
    for line in body.lines() {
        let (k, v) = line.split_once('=')?;
        map.insert(k.to_string(), v.to_string());
    }
    Some(Aggregate {
        mean_auc: map.get("mean_auc")?.parse().ok()?,
        sd_auc: map.get("sd_auc")?.parse().ok()?,
        mean_flops: map.get("mean_flops")?.parse().ok()?,
        mean_peak_bytes: map.get("mean_peak_bytes")?.parse().ok()?,
        mean_wall_s: map.get("mean_wall_s")?.parse().ok()?,
        n: map.get("n")?.parse().ok()?,
    })
}

/// The full-FRaC baseline for a data set, cached on disk so `table3`/
/// `table4` reuse `table2`'s runs. Cache key includes the replicate count;
/// delete `target/frac-results/` to force a rerun (e.g. after retuning the
/// generators).
pub fn full_baseline(name: &str, n_reps: usize) -> Aggregate {
    let path = cache_dir().join(format!("full-{name}-{n_reps}.kv"));
    if let Some(agg) = read_aggregate(&path) {
        return agg;
    }
    let (spec, ld) = dataset_for(name);
    let agg = run_method(&ld, &spec, &Variant::Full, n_reps);
    write_aggregate(&path, &agg);
    agg
}

#[cfg(test)]
mod tests {
    use super::*;
    use frac_core::Variant;

    #[test]
    fn replicate_knobs() {
        // Default without env vars is the paper's 5 (test environments may
        // set the vars, so only check the parse path indirectly).
        let n = n_replicates();
        assert!(n >= 1);
    }

    #[test]
    fn dataset_for_is_deterministic() {
        let (s1, d1) = dataset_for("breast.basal");
        let (_, d2) = dataset_for("breast.basal");
        assert_eq!(d1.data, d2.data);
        assert_eq!(s1.name, "breast.basal");
    }

    #[test]
    fn run_method_produces_sane_aggregate() {
        // Smallest data set, one replicate, cheapest variant: a smoke test
        // that the whole harness path works.
        let (s, ld) = dataset_for("breast.basal");
        let agg = run_method(
            &ld,
            &s,
            &Variant::FullFilter {
                selector: frac_core::FeatureSelector::Random,
                p: 0.05,
            },
            1,
        );
        assert!(agg.mean_auc >= 0.0 && agg.mean_auc <= 1.0);
        assert!(agg.mean_flops > 0.0);
    }
}
