//! # frac-baselines
//!
//! The competing anomaly detectors FRaC was evaluated against in the
//! original FRaC papers (refs. 4–6 of this paper): **local outlier factor**
//! (Breunig et al. 2000), the **one-class support vector machine**
//! (Schölkopf et al. 2000), and the simple **k-NN distance** score. The
//! paper's motivating claim — FRaC "is more robust to irrelevant variables"
//! than these methods — is reproduced by the `baselines` bench binary using
//! these implementations.
//!
//! All three operate on the one-hot-encoded real representation of a data
//! set (mixed data is supported through the same Fig. 2 encoding FRaC's
//! design matrices use). Each exposes the same shape of API: fit on an
//! all-normal training set, then score test samples (higher = more
//! anomalous).

#![warn(missing_docs)]

pub mod knn;
pub mod lof;
pub mod ocsvm;

pub use knn::KnnDistance;
pub use lof::LocalOutlierFactor;
pub use ocsvm::{OneClassSvm, OcSvmConfig};

use frac_dataset::{Dataset, DesignMatrix};
use frac_projection::one_hot_encode;

/// Common trait for baseline detectors.
pub trait AnomalyDetector {
    /// Fit on an all-normal training set.
    fn fit(&mut self, train: &DesignMatrix);

    /// Anomaly score for one encoded row (higher = more anomalous).
    fn score(&self, x: &[f64]) -> f64;

    /// Score every row of an encoded test set.
    fn score_batch(&self, test: &DesignMatrix) -> Vec<f64> {
        (0..test.n_rows()).map(|r| self.score(test.row(r))).collect()
    }
}

/// Convenience: fit a detector on a mixed data set and score another,
/// sharing the one-hot encoding.
pub fn fit_score_datasets<D: AnomalyDetector>(
    detector: &mut D,
    train: &Dataset,
    test: &Dataset,
) -> Vec<f64> {
    assert_eq!(
        train.schema(),
        test.schema(),
        "train and test must share a schema"
    );
    let train_m = one_hot_encode(train);
    let test_m = one_hot_encode(test);
    detector.fit(&train_m);
    detector.score_batch(&test_m)
}

/// Squared Euclidean distance between two equal-length slices.
#[inline]
pub(crate) fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use frac_dataset::dataset::DatasetBuilder;

    #[test]
    fn fit_score_handles_mixed_schemas() {
        let train = DatasetBuilder::new()
            .real("r", vec![0.0, 0.1, -0.1, 0.05, 0.0, -0.05])
            .categorical("c", 3, vec![0, 0, 0, 0, 0, 0])
            .build();
        let test = DatasetBuilder::new()
            .real("r", vec![0.0, 5.0])
            .categorical("c", 3, vec![0, 2])
            .build();
        let mut det = KnnDistance::new(2);
        let scores = fit_score_datasets(&mut det, &train, &test);
        assert!(scores[1] > scores[0], "outlier must outscore inlier");
    }
}
