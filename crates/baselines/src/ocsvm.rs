//! One-class support vector machine (Schölkopf et al., *New Support Vector
//! Algorithms*, Neural Computation 2000 — the paper's ref. 6).
//!
//! The ν-parameterized one-class SVM separates the training mass from the
//! origin in feature space; at most a ν-fraction of training points fall
//! outside the learned region. Dual problem:
//!
//! ```text
//!   min_α ½ αᵀKα    s.t.  0 ≤ α_i ≤ 1/(νn),  Σ α_i = 1
//! ```
//!
//! solved by SMO-style pairwise coordinate descent on the most violating
//! pair (the equality constraint forces pairwise updates). Anomaly score is
//! `ρ − Σ_i α_i K(x_i, x)` (positive outside the region).

use crate::{sq_dist, AnomalyDetector};
use frac_dataset::DesignMatrix;

/// Kernel choice for the one-class SVM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// Linear kernel `⟨x, y⟩`.
    Linear,
    /// RBF kernel `exp(−γ‖x−y‖²)`; `None` = the "scale" heuristic
    /// `γ = 1/(d·Var[x])` fit from training data.
    Rbf {
        /// Bandwidth γ (None = heuristic).
        gamma: Option<f64>,
    },
}

/// One-class SVM hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct OcSvmConfig {
    /// ν ∈ (0, 1]: upper bound on the training outlier fraction and lower
    /// bound on the support-vector fraction.
    pub nu: f64,
    /// Kernel.
    pub kernel: Kernel,
    /// Maximum SMO pair updates.
    pub max_iter: usize,
    /// KKT violation tolerance.
    pub tolerance: f64,
}

impl Default for OcSvmConfig {
    fn default() -> Self {
        OcSvmConfig {
            nu: 0.1,
            kernel: Kernel::Rbf { gamma: None },
            max_iter: 20_000,
            tolerance: 1e-4,
        }
    }
}

/// A (possibly unfitted) one-class SVM detector.
#[derive(Debug, Clone)]
pub struct OneClassSvm {
    config: OcSvmConfig,
    train: Vec<Vec<f64>>,
    alpha: Vec<f64>,
    rho: f64,
    gamma: f64,
}

impl OneClassSvm {
    /// New detector with the given configuration.
    ///
    /// # Panics
    /// Panics unless `0 < ν ≤ 1`.
    pub fn new(config: OcSvmConfig) -> Self {
        assert!(
            config.nu > 0.0 && config.nu <= 1.0,
            "ν must be in (0, 1], got {}",
            config.nu
        );
        OneClassSvm { config, train: Vec::new(), alpha: Vec::new(), rho: 0.0, gamma: 0.0 }
    }

    /// Detector with default configuration (ν = 0.1, RBF-scale kernel).
    pub fn with_defaults() -> Self {
        OneClassSvm::new(OcSvmConfig::default())
    }

    fn kernel(&self, a: &[f64], b: &[f64]) -> f64 {
        match self.config.kernel {
            Kernel::Linear => a.iter().zip(b).map(|(x, y)| x * y).sum(),
            Kernel::Rbf { .. } => (-self.gamma * sq_dist(a, b)).exp(),
        }
    }

    /// The offset ρ of the fitted decision function.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Number of support vectors (α > 0).
    pub fn n_support(&self) -> usize {
        self.alpha.iter().filter(|&&a| a > 1e-12).count()
    }
}

impl AnomalyDetector for OneClassSvm {
    fn fit(&mut self, train: &DesignMatrix) {
        let n = train.n_rows();
        assert!(n >= 2, "one-class SVM needs at least two training points");
        self.train = (0..n).map(|r| train.row(r).to_vec()).collect();

        // RBF "scale" heuristic: γ = 1 / (d · Var[all entries]).
        self.gamma = match self.config.kernel {
            Kernel::Linear => 0.0,
            Kernel::Rbf { gamma: Some(g) } => g,
            Kernel::Rbf { gamma: None } => {
                let d = train.n_cols().max(1) as f64;
                let vals = train.values();
                let mean = vals.iter().sum::<f64>() / vals.len().max(1) as f64;
                let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>()
                    / vals.len().max(1) as f64;
                1.0 / (d * var.max(1e-12))
            }
        };

        // Kernel matrix (n ≤ a few hundred in this domain).
        let mut k_mat = vec![0.0f64; n * n];
        for i in 0..n {
            for j in i..n {
                let v = self.kernel(&self.train[i], &self.train[j]);
                k_mat[i * n + j] = v;
                k_mat[j * n + i] = v;
            }
        }

        // Initialize α feasibly: first ⌊νn⌋ points at the upper bound, one
        // fractional, rest zero (the libSVM initialization).
        let c = 1.0 / (self.config.nu * n as f64);
        let mut alpha = vec![0.0f64; n];
        let mut remaining = 1.0f64;
        for a in alpha.iter_mut() {
            let take = remaining.min(c);
            *a = take;
            remaining -= take;
            if remaining <= 0.0 {
                break;
            }
        }

        // Gradient g_i = (Kα)_i.
        let mut g: Vec<f64> = (0..n)
            .map(|i| (0..n).map(|j| k_mat[i * n + j] * alpha[j]).sum())
            .collect();

        for _ in 0..self.config.max_iter {
            // Most violating pair: i can increase (α_i < C) with minimal
            // gradient; j can decrease (α_j > 0) with maximal gradient.
            let mut i_up = None;
            let mut j_dn = None;
            for t in 0..n {
                if alpha[t] < c - 1e-15 && i_up.is_none_or(|i: usize| g[t] < g[i]) {
                    i_up = Some(t);
                }
                if alpha[t] > 1e-15 && j_dn.is_none_or(|j: usize| g[t] > g[j]) {
                    j_dn = Some(t);
                }
            }
            let (i, j) = match (i_up, j_dn) {
                (Some(i), Some(j)) if g[j] - g[i] > self.config.tolerance => (i, j),
                _ => break,
            };
            let denom = (k_mat[i * n + i] + k_mat[j * n + j] - 2.0 * k_mat[i * n + j]).max(1e-12);
            let step = ((g[j] - g[i]) / denom)
                .min(c - alpha[i])
                .min(alpha[j]);
            if step <= 0.0 {
                break;
            }
            alpha[i] += step;
            alpha[j] -= step;
            for t in 0..n {
                g[t] += step * (k_mat[t * n + i] - k_mat[t * n + j]);
            }
        }

        // ρ = decision value at the margin: average g over free support
        // vectors, falling back to the feasible midpoint.
        let free: Vec<f64> = (0..n)
            .filter(|&t| alpha[t] > 1e-9 && alpha[t] < c - 1e-9)
            .map(|t| g[t])
            .collect();
        self.rho = if free.is_empty() {
            let lo = (0..n)
                .filter(|&t| alpha[t] > 1e-9)
                .map(|t| g[t])
                .fold(f64::NEG_INFINITY, f64::max);
            let hi = (0..n)
                .filter(|&t| alpha[t] < c - 1e-9)
                .map(|t| g[t])
                .fold(f64::INFINITY, f64::min);
            0.5 * (lo + hi)
        } else {
            free.iter().sum::<f64>() / free.len() as f64
        };
        self.alpha = alpha;
    }

    fn score(&self, x: &[f64]) -> f64 {
        assert!(!self.train.is_empty(), "fit before scoring");
        let f: f64 = self
            .train
            .iter()
            .zip(&self.alpha)
            .filter(|(_, &a)| a > 1e-12)
            .map(|(t, &a)| a * self.kernel(t, x))
            .sum();
        self.rho - f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(n: usize, cx: f64, cy: f64, spread: f64, seed: u64) -> Vec<f64> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        (0..n)
            .flat_map(|_| vec![cx + spread * next(), cy + spread * next()])
            .collect()
    }

    #[test]
    fn outliers_score_above_inliers() {
        let m = DesignMatrix::from_raw(40, 2, blob(40, 0.0, 0.0, 1.0, 3));
        let mut svm = OneClassSvm::with_defaults();
        svm.fit(&m);
        let inlier = svm.score(&[0.0, 0.0]);
        let outlier = svm.score(&[6.0, 6.0]);
        assert!(outlier > inlier, "outlier {outlier} vs inlier {inlier}");
        assert!(outlier > 0.0, "far point must be outside the region");
    }

    #[test]
    fn nu_bounds_training_outlier_fraction() {
        let m = DesignMatrix::from_raw(50, 2, blob(50, 0.0, 0.0, 1.0, 7));
        for &nu in &[0.05f64, 0.2, 0.5] {
            let mut svm = OneClassSvm::new(OcSvmConfig { nu, ..OcSvmConfig::default() });
            svm.fit(&m);
            let outliers = (0..50).filter(|&r| svm.score(m.row(r)) > 1e-9).count();
            // ν-property: at most ~νn training outliers (allow +2 slack for
            // finite-precision boundaries).
            assert!(
                outliers as f64 <= nu * 50.0 + 2.0,
                "ν = {nu}: {outliers} training outliers"
            );
        }
    }

    #[test]
    fn support_vector_fraction_at_least_nu() {
        let m = DesignMatrix::from_raw(50, 2, blob(50, 0.0, 0.0, 1.0, 9));
        let nu = 0.3;
        let mut svm = OneClassSvm::new(OcSvmConfig { nu, ..OcSvmConfig::default() });
        svm.fit(&m);
        assert!(
            svm.n_support() as f64 >= nu * 50.0 - 1.0,
            "{} support vectors",
            svm.n_support()
        );
    }

    #[test]
    fn linear_kernel_works() {
        let m = DesignMatrix::from_raw(30, 2, blob(30, 3.0, 3.0, 0.5, 5));
        let mut svm = OneClassSvm::new(OcSvmConfig {
            kernel: Kernel::Linear,
            ..OcSvmConfig::default()
        });
        svm.fit(&m);
        // With a linear kernel the decision function is a hyperplane through
        // the data's "direction"; origin-side points score as anomalies.
        assert!(svm.score(&[0.0, 0.0]) > svm.score(&[3.0, 3.0]));
    }

    #[test]
    fn score_decreases_towards_the_mass() {
        let m = DesignMatrix::from_raw(40, 2, blob(40, 0.0, 0.0, 1.0, 11));
        let mut svm = OneClassSvm::with_defaults();
        svm.fit(&m);
        let far = svm.score(&[8.0, 0.0]);
        let mid = svm.score(&[3.0, 0.0]);
        let near = svm.score(&[0.2, 0.0]);
        assert!(far >= mid && mid > near, "{far} {mid} {near}");
    }

    #[test]
    #[should_panic(expected = "ν must be in")]
    fn bad_nu_rejected() {
        OneClassSvm::new(OcSvmConfig { nu: 0.0, ..OcSvmConfig::default() });
    }
}
