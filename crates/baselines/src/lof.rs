//! Local Outlier Factor (Breunig, Kriegel, Ng, Sander — SIGMOD 2000; the
//! paper's ref. 5).
//!
//! LOF compares a point's local reachability density to that of its k
//! nearest neighbours: a point in a sparse region relative to its
//! neighbourhood scores > 1. Implemented exactly per the paper, brute-force
//! (n ≤ a few hundred in this domain):
//!
//! * `k-distance(p)` — distance to the k-th nearest neighbour;
//! * `reach-dist_k(p, o) = max(k-distance(o), d(p, o))`;
//! * `lrd_k(p) = 1 / mean_{o ∈ N_k(p)} reach-dist_k(p, o)`;
//! * `LOF_k(p) = mean_{o ∈ N_k(p)} lrd_k(o) / lrd_k(p)`.

use crate::{sq_dist, AnomalyDetector};
use frac_dataset::DesignMatrix;

/// Local Outlier Factor detector over a fixed training set.
#[derive(Debug, Clone)]
pub struct LocalOutlierFactor {
    k: usize,
    train: Vec<Vec<f64>>,
    /// Per training point: indices of its k nearest neighbours.
    neighbors: Vec<Vec<usize>>,
    /// Per training point: k-distance.
    k_distance: Vec<f64>,
    /// Per training point: local reachability density.
    lrd: Vec<f64>,
}

impl LocalOutlierFactor {
    /// New detector with `MinPts = k` (the literature's usual 10–20 works
    /// well at cohort sizes; callers with < k training points get k clamped
    /// at fit time).
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        LocalOutlierFactor {
            k,
            train: Vec::new(),
            neighbors: Vec::new(),
            k_distance: Vec::new(),
            lrd: Vec::new(),
        }
    }

    /// k nearest training indices of an arbitrary point (excluding an
    /// optional training self-index), plus the k-distance.
    fn knn_of(&self, x: &[f64], exclude: Option<usize>, k: usize) -> (Vec<usize>, f64) {
        let mut dists: Vec<(f64, usize)> = self
            .train
            .iter()
            .enumerate()
            .filter(|(i, _)| Some(*i) != exclude)
            .map(|(i, t)| (sq_dist(t, x).sqrt(), i))
            .collect();
        dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let k = k.min(dists.len());
        let kth = dists[k - 1].0;
        (dists[..k].iter().map(|&(_, i)| i).collect(), kth)
    }

    fn reach_dist(&self, from: &[f64], to_idx: usize) -> f64 {
        let d = sq_dist(from, &self.train[to_idx]).sqrt();
        d.max(self.k_distance[to_idx])
    }

    fn lrd_of(&self, x: &[f64], neighbors: &[usize]) -> f64 {
        let mean_reach: f64 = neighbors
            .iter()
            .map(|&o| self.reach_dist(x, o))
            .sum::<f64>()
            / neighbors.len() as f64;
        if mean_reach <= 0.0 {
            // Duplicated points: infinite density; cap for finite scores.
            1e12
        } else {
            1.0 / mean_reach
        }
    }
}

impl AnomalyDetector for LocalOutlierFactor {
    fn fit(&mut self, train: &DesignMatrix) {
        assert!(train.n_rows() >= 2, "LOF needs at least two training points");
        self.train = (0..train.n_rows()).map(|r| train.row(r).to_vec()).collect();
        let k = self.k.min(self.train.len() - 1);
        let n = self.train.len();

        self.neighbors = Vec::with_capacity(n);
        self.k_distance = Vec::with_capacity(n);
        for i in 0..n {
            let (nbrs, kd) = self.knn_of(&self.train[i].clone(), Some(i), k);
            self.neighbors.push(nbrs);
            self.k_distance.push(kd);
        }
        // lrd needs k-distances of all points first.
        self.lrd = (0..n)
            .map(|i| self.lrd_of(&self.train[i].clone(), &self.neighbors[i].clone()))
            .collect();
    }

    fn score(&self, x: &[f64]) -> f64 {
        assert!(!self.train.is_empty(), "fit before scoring");
        let k = self.k.min(self.train.len() - 1).max(1);
        let (nbrs, _) = self.knn_of(x, None, k);
        let lrd_x = self.lrd_of(x, &nbrs);
        let mean_nbr_lrd: f64 =
            nbrs.iter().map(|&o| self.lrd[o]).sum::<f64>() / nbrs.len() as f64;
        mean_nbr_lrd / lrd_x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_density_clusters() -> DesignMatrix {
        // Dense cluster near origin, sparse cluster near (10, 10).
        let mut pts = Vec::new();
        for i in 0..20 {
            pts.push((i % 5) as f64 * 0.05);
            pts.push((i % 4) as f64 * 0.05);
        }
        for i in 0..6 {
            pts.push(10.0 + (i % 3) as f64 * 1.5);
            pts.push(10.0 + (i % 2) as f64 * 1.5);
        }
        DesignMatrix::from_raw(26, 2, pts)
    }

    #[test]
    fn inliers_score_near_one() {
        let mut lof = LocalOutlierFactor::new(5);
        lof.fit(&two_density_clusters());
        let s = lof.score(&[0.05, 0.05]);
        assert!((0.5..1.6).contains(&s), "inlier LOF = {s}");
    }

    #[test]
    fn global_outlier_scores_high() {
        let mut lof = LocalOutlierFactor::new(5);
        lof.fit(&two_density_clusters());
        let inlier = lof.score(&[0.05, 0.05]);
        let outlier = lof.score(&[5.0, 5.0]);
        assert!(outlier > inlier * 2.0, "outlier {outlier} vs inlier {inlier}");
    }

    #[test]
    fn local_density_matters() {
        // The signature LOF behaviour: a point at the edge of the sparse
        // cluster is less anomalous than the same offset from the dense one.
        let mut lof = LocalOutlierFactor::new(4);
        lof.fit(&two_density_clusters());
        let near_sparse = lof.score(&[12.0, 12.0]);
        let near_dense = lof.score(&[2.0, 2.0]);
        assert!(
            near_dense > near_sparse,
            "offset from dense cluster ({near_dense}) must outscore same offset \
             from sparse cluster ({near_sparse})"
        );
    }

    #[test]
    fn duplicated_training_points_stay_finite() {
        let m = DesignMatrix::from_raw(4, 1, vec![1.0, 1.0, 1.0, 1.0]);
        let mut lof = LocalOutlierFactor::new(2);
        lof.fit(&m);
        assert!(lof.score(&[1.0]).is_finite());
        assert!(lof.score(&[2.0]).is_finite());
    }

    #[test]
    fn k_clamped_to_train_size() {
        let m = DesignMatrix::from_raw(3, 1, vec![0.0, 1.0, 2.0]);
        let mut lof = LocalOutlierFactor::new(10);
        lof.fit(&m);
        assert!(lof.score(&[0.5]).is_finite());
    }
}
