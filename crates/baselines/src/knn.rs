//! k-nearest-neighbour distance anomaly score.
//!
//! The simplest density-flavoured baseline: a sample's score is the mean
//! Euclidean distance to its k nearest training samples. Brute force —
//! training cohorts in this domain have at most a few hundred samples.

use crate::{sq_dist, AnomalyDetector};
use frac_dataset::DesignMatrix;

/// Mean-distance-to-k-nearest-neighbours detector.
#[derive(Debug, Clone)]
pub struct KnnDistance {
    k: usize,
    train: Vec<Vec<f64>>,
}

impl KnnDistance {
    /// New detector with neighbourhood size `k`.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        KnnDistance { k, train: Vec::new() }
    }

    /// The configured neighbourhood size.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl AnomalyDetector for KnnDistance {
    fn fit(&mut self, train: &DesignMatrix) {
        assert!(train.n_rows() > 0, "empty training set");
        self.train = (0..train.n_rows()).map(|r| train.row(r).to_vec()).collect();
    }

    fn score(&self, x: &[f64]) -> f64 {
        assert!(!self.train.is_empty(), "fit before scoring");
        let mut dists: Vec<f64> = self.train.iter().map(|t| sq_dist(t, x)).collect();
        let k = self.k.min(dists.len());
        dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
        dists[..k].iter().map(|d| d.sqrt()).sum::<f64>() / k as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> DesignMatrix {
        let pts: Vec<f64> = (0..20)
            .flat_map(|i| vec![(i % 5) as f64 * 0.1, (i % 4) as f64 * 0.1])
            .collect();
        DesignMatrix::from_raw(20, 2, pts)
    }

    #[test]
    fn outliers_score_higher() {
        let mut det = KnnDistance::new(3);
        det.fit(&cluster());
        let inlier = det.score(&[0.2, 0.15]);
        let outlier = det.score(&[5.0, 5.0]);
        assert!(outlier > inlier * 10.0);
    }

    #[test]
    fn score_grows_with_distance() {
        let mut det = KnnDistance::new(2);
        det.fit(&cluster());
        let s1 = det.score(&[1.0, 1.0]);
        let s2 = det.score(&[2.0, 2.0]);
        let s3 = det.score(&[4.0, 4.0]);
        assert!(s1 < s2 && s2 < s3);
    }

    #[test]
    fn k_larger_than_train_is_clamped() {
        let m = DesignMatrix::from_raw(2, 1, vec![0.0, 1.0]);
        let mut det = KnnDistance::new(10);
        det.fit(&m);
        assert!(det.score(&[0.5]).is_finite());
    }

    #[test]
    #[should_panic(expected = "fit before scoring")]
    fn scoring_unfitted_panics() {
        KnnDistance::new(1).score(&[0.0]);
    }
}
