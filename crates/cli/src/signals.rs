//! Minimal POSIX signal hookup for the serving daemon.
//!
//! The workspace deliberately carries no `libc`-style dependency, and the
//! standard library exposes no signal API, so `frac serve` declares the one
//! C function it needs — `signal(2)` — directly. The handlers only flip
//! `static` atomics (the only thing that is async-signal-safe anyway); a
//! watcher thread in the serve command polls the flags and forwards them to
//! the daemon's [`frac_core::ServeHandle`].
//!
//! glibc's `signal()` installs BSD semantics (`SA_RESTART`), so a daemon
//! blocked in `read(2)` on a quiet stdin is *not* interrupted by `SIGTERM`
//! — which is exactly why the serve engine keeps its reader on a side
//! thread and polls the shutdown flag from the main loop.
//!
//! On non-Unix targets installation is a no-op: the daemon still honors
//! `cmd stop` and EOF, it just cannot be signalled.

use std::sync::atomic::{AtomicBool, Ordering};

/// `SIGHUP`: reload the model.
#[cfg(unix)]
const SIGHUP: i32 = 1;
/// `SIGTERM`: drain and exit.
#[cfg(unix)]
const SIGTERM: i32 = 15;

static HUP: AtomicBool = AtomicBool::new(false);
static TERM: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" {
    /// POSIX `signal(2)`. Takes and returns a handler as a plain address so
    /// no function-pointer-type aliasing is needed; `usize::MAX` is
    /// `SIG_ERR` on every platform this repo targets.
    fn signal(signum: i32, handler: usize) -> usize;
}

#[cfg(unix)]
extern "C" fn on_hup(_signum: i32) {
    HUP.store(true, Ordering::Relaxed);
}

#[cfg(unix)]
extern "C" fn on_term(_signum: i32) {
    TERM.store(true, Ordering::Relaxed);
}

/// Install the `SIGHUP`/`SIGTERM` handlers. Call once, before serving.
pub fn install() {
    #[cfg(unix)]
    // SAFETY: `signal` is the POSIX libc entry point the process is already
    // linked against; the installed handlers only store to static atomics,
    // which is async-signal-safe. A `SIG_ERR` return (e.g. inside an
    // exotic sandbox) leaves the default disposition in place, which is the
    // pre-existing behavior — nothing to unwind.
    unsafe {
        let _ = signal(SIGHUP, on_hup as *const () as usize);
        let _ = signal(SIGTERM, on_term as *const () as usize);
    }
}

/// True once per received `SIGHUP` (the flag is consumed).
pub fn take_reload() -> bool {
    HUP.swap(false, Ordering::Relaxed)
}

/// True once a `SIGTERM` has been received (latched; not consumed).
pub fn termination_requested() -> bool {
    TERM.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_start_clear_and_reload_is_consumed() {
        // Note: handler installation is exercised end-to-end by the tier-1
        // serve smoke (SIGHUP reload + SIGTERM drain against a real daemon);
        // here we only pin the flag semantics the watcher relies on.
        assert!(!termination_requested());
        assert!(!take_reload());
        HUP.store(true, Ordering::Relaxed);
        assert!(take_reload());
        assert!(!take_reload(), "reload flag must be one-shot");
    }
}
