//! Hand-rolled argument parsing (no CLI dependency).

use std::path::PathBuf;
use std::time::Duration;

/// Full usage text.
pub const USAGE: &str = "\
frac — FRaC anomaly detection for precision medicine (IPPS 2017 reproduction)

USAGE:
  frac train --train FILE --out FILE [OPTIONS]
      Fit a FRaC model on an all-normal cohort and save it.
        --variant NAME     full | filter | entropy (single-model variants)
        --p FLOAT          keep fraction for filtering variants (default 0.05)
        --snp              use decision trees everywhere (SNP data)
        --seed N           master seed (default 42)
        --journal FILE     write-ahead journal: each finished target is
                           checkpointed so a killed run can be resumed
        --deadline DUR     wall-clock budget (e.g. 500ms, 2s, 5m); targets
                           still unfitted at the deadline degrade to
                           baseline predictors and the run exits cleanly
        --shards N         split the fit across N supervised worker
                           processes (requires --journal). Each worker
                           journals its own shard (FILE.s<k>-<N>); dead or
                           stalled workers are restarted with backoff, and
                           the merged model is bit-identical to a
                           single-process run
        --shard-retries N  worker restarts per shard before the supervisor
                           reclaims the shard in-process (default 3)
        --shard-heartbeat DUR
                           kill a worker whose shard journal has not grown
                           for DUR (default 30s)
        --shard-backoff DUR
                           base restart delay, doubling per restart
                           (default 250ms)
        --telemetry FILE   record a span-level trace of the fit (where
                           each target's time went) and write it here:
                           self-describing TSV, or JSON if FILE ends in
                           .json; inspect with `frac inspect-telemetry`
        --kernel-tier T    force the blocked-kernel tier for A/B runs:
                           unrolled (portable fallback) or avx2 (requires
                           AVX2+FMA); default: best supported tier
        --solver-strategy S
                           fast-SVM execution strategy: auto (cost-model
                           selection per solve, default), gram (Gram-matrix
                           dual maintenance for n ≪ d), or primal (classic
                           primal maintenance)

  frac resume --train FILE --out FILE --journal FILE [OPTIONS]
      Continue a journaled `train` run that was killed or hit its
      deadline. Takes the same OPTIONS as train; data, variant, and seed
      must match the original run (the journal header is verified).
      Already-completed targets are loaded from the journal, the rest are
      fitted, and the result is bit-identical to an uninterrupted run.
      To resume a `--shards` run, repeat --journal once per shard journal
      or point a single --journal at the directory containing them; each
      shard journal is verified separately.

  frac score --train FILE --test FILE [OPTIONS]
  frac score --model FILE --test FILE [OPTIONS]
      Score test samples against an all-normal training cohort, or against
      a previously saved model (train once, screen forever).
        --variant NAME     full | filter | filter-ens | entropy | diverse | jl
                           (default: filter-ens, the paper's recommendation)
        --p FLOAT          keep fraction / inclusion probability (default 0.05)
        --members N        ensemble members (default 10)
        --dim N            JL projected dimension (default 64)
        --snp              use decision trees everywhere (SNP data)
        --seed N           master seed (default 42)
        --labels FILE      one 0/1 per test row; prints AUC when given
        --top-features K   print each sample's K highest-contributing features

  frac entropy --data FILE [--top K]
      Rank features by estimated entropy (the entropy filter's criterion).

  frac inspect-telemetry --file FILE [--top K]
      Summarize a telemetry trace written by `train --telemetry`: per-stage
      time table, counters, and the K slowest targets (default 10).

  frac serve --model FILE --schema FILE [OPTIONS]
      Long-lived scoring daemon: load the model once (CRC-verified), then
      score streaming records. Reads line-oriented requests — TSV rows in
      schema order, flat JSON objects, or `cmd ping|stats|reload|stop` —
      and answers `ns <line> <score>` / `err <line> <reason>` /
      `busy <line>` on the same connection. SIGHUP hot-reloads the model
      (validated off-path, rolled back on failure); SIGTERM drains and
      exits cleanly. Scores are bit-identical to `frac score`.
        --schema FILE      TSV whose header defines the record layout
                           (usually the training file; only the header
                           line is read)
        --listen ADDR      serve a TCP socket, e.g. 127.0.0.1:7878
                           (default: stdin/stdout pipe mode; ADDR with
                           port 0 picks a free port, printed to stderr)
        --batch-max N      most records scored per batch (default 64)
        --queue-cap N      admission queue bound; a full queue answers
                           `busy` instead of buffering (default 1024)
        --request-timeout DUR
                           per-request deadline; requests queued longer
                           get a timeout error (default 5s)
        --drain-timeout DUR
                           bound on the shutdown drain (default 5s)
        --max-line-bytes N longest accepted request line (default 1048576)
        --telemetry FILE   write a serve telemetry trace on exit (latency
                           percentiles, shed/quarantine counters); view
                           with `frac inspect-telemetry`

  frac generate --dataset NAME --out DIR [--seed N]
      Write a paper-surrogate data set as train/test TSVs.
      NAME ∈ {breast.basal, biomarkers, ethnic, bild, smokers2,
              hematopoiesis, autism, schizophrenia}

  frac pack --data FILE.tsv --out FILE.fcb [--chunk-rows N]
      Convert a TSV data set to FCB, the checksummed binary column format
      (byte layout in FORMATS.md). Packing streams: at most --chunk-rows
      rows (default 8192) are in memory at once, so data sets larger than
      RAM pack fine, and the output file appears atomically (tmp + fsync
      + rename). Example:
        frac pack --data train.tsv --out train.fcb
        frac train --train train.fcb --out model.frac

  frac info --data FILE.fcb
      Validate an FCB file (magic, version, geometry, and every CRC) and
      print its header: rows, features, schema fingerprint, file
      checksum, and per-column kind/missing-count/CRC. Example:
        frac info --data train.fcb

  Every file flag that reads a data set (--train, --test, --data,
  --schema) accepts either format: files ending in .fcb are
  memory-mapped and verified, anything else is parsed as TSV. Scores
  are bit-identical either way.

  frac help
      Print this text.";

/// A parsed command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `frac train`
    Train(TrainArgs),
    /// `frac resume` — continue a journaled train run.
    Resume(TrainArgs),
    /// `frac score`
    Score(ScoreArgs),
    /// `frac entropy`
    Entropy {
        /// Input data file.
        data: PathBuf,
        /// How many features to print.
        top: usize,
    },
    /// `frac inspect-telemetry` — summarize a `--telemetry` trace file.
    InspectTelemetry {
        /// Telemetry TSV written by `train --telemetry`.
        file: PathBuf,
        /// How many slowest targets to print.
        top: usize,
    },
    /// `frac serve` — long-lived scoring daemon.
    Serve(ServeArgs),
    /// `frac pack` — convert a TSV data set to the FCB binary format.
    Pack {
        /// Input TSV path.
        data: PathBuf,
        /// Output FCB path.
        out: PathBuf,
        /// Rows buffered per write chunk (the encode memory budget).
        chunk_rows: usize,
    },
    /// `frac info` — validate an FCB file and print its header.
    Info {
        /// FCB file to inspect.
        data: PathBuf,
    },
    /// `frac generate`
    Generate {
        /// Registry data-set name.
        dataset: String,
        /// Output directory.
        out: PathBuf,
        /// Cohort seed.
        seed: u64,
    },
    /// `frac help`
    Help,
}

/// Arguments of `frac train`.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainArgs {
    /// Reference-cohort TSV.
    pub train: PathBuf,
    /// Output model path.
    pub out: PathBuf,
    /// Variant name (full | filter | entropy).
    pub variant: String,
    /// Keep fraction for filtering variants.
    pub p: f64,
    /// Tree models everywhere (SNP data)?
    pub snp: bool,
    /// Master seed.
    pub seed: u64,
    /// Write-ahead journal paths (checkpoint every finished target).
    /// `train` takes at most one; `resume` accepts several (one per shard
    /// of a `--shards` run) or a directory containing them.
    pub journals: Vec<PathBuf>,
    /// Wall-clock budget for the whole fit.
    pub deadline: Option<Duration>,
    /// Split the fit across this many supervised worker processes.
    pub shards: Option<usize>,
    /// Hidden worker mode: run shard `.0` of `.1` and exit (the supervisor
    /// re-invokes the binary with this flag; not part of the public UI).
    pub shard_worker: Option<(usize, usize)>,
    /// Hidden fault injection for the supervisor's process-level fault
    /// harness, e.g. `crashloop:1` or `abort-after:0:3` (comma-separated).
    pub shard_fault: Option<String>,
    /// Worker restarts per shard before in-process reclaim.
    pub shard_retries: Option<usize>,
    /// Heartbeat timeout: kill a worker whose journal stops growing.
    pub shard_heartbeat: Option<Duration>,
    /// Base restart backoff (doubles per restart).
    pub shard_backoff: Option<Duration>,
    /// Telemetry trace output path (TSV, or JSON for a `.json` extension).
    pub telemetry: Option<PathBuf>,
    /// Forced blocked-kernel tier name (`unrolled` | `avx2`), if any.
    pub kernel_tier: Option<String>,
    /// Fast-SVM execution strategy (`auto` | `gram` | `primal`), if any.
    pub solver_strategy: Option<String>,
}

impl Default for TrainArgs {
    fn default() -> Self {
        TrainArgs {
            train: PathBuf::new(),
            out: PathBuf::new(),
            variant: "full".into(),
            p: 0.05,
            snp: false,
            seed: 42,
            journals: Vec::new(),
            deadline: None,
            shards: None,
            shard_worker: None,
            shard_fault: None,
            shard_retries: None,
            shard_heartbeat: None,
            shard_backoff: None,
            telemetry: None,
            kernel_tier: None,
            solver_strategy: None,
        }
    }
}

impl TrainArgs {
    /// The single journal path of a non-sharded run (`train` enforces at
    /// most one `--journal`).
    pub fn journal(&self) -> Option<&PathBuf> {
        self.journals.first()
    }
}

/// Arguments of `frac score`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreArgs {
    pub train: PathBuf,
    pub model: Option<PathBuf>,
    pub test: PathBuf,
    pub variant: String,
    pub p: f64,
    pub members: usize,
    pub dim: usize,
    pub snp: bool,
    pub seed: u64,
    pub labels: Option<PathBuf>,
    pub top_features: usize,
}

impl Default for ScoreArgs {
    fn default() -> Self {
        ScoreArgs {
            train: PathBuf::new(),
            model: None,
            test: PathBuf::new(),
            variant: "filter-ens".into(),
            p: 0.05,
            members: 10,
            dim: 64,
            snp: false,
            seed: 42,
            labels: None,
            top_features: 0,
        }
    }
}

/// Arguments of `frac serve`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// Saved model to serve (CRC-verified at startup and on reload).
    pub model: PathBuf,
    /// TSV whose header defines the record layout (only the header is read).
    pub schema: PathBuf,
    /// TCP listen address; `None` = stdin/stdout pipe mode.
    pub listen: Option<String>,
    /// Most records scored per batch.
    pub batch_max: usize,
    /// Admission queue bound (full queue sheds with `busy`).
    pub queue_cap: usize,
    /// Per-request deadline while queued.
    pub request_timeout: Duration,
    /// Bound on the shutdown drain.
    pub drain_timeout: Duration,
    /// Longest accepted request line, in bytes.
    pub max_line_bytes: usize,
    /// Where to write the serve telemetry trace on exit, if anywhere.
    pub telemetry: Option<PathBuf>,
}

impl Default for ServeArgs {
    fn default() -> Self {
        ServeArgs {
            model: PathBuf::new(),
            schema: PathBuf::new(),
            listen: None,
            batch_max: 64,
            queue_cap: 1024,
            request_timeout: Duration::from_secs(5),
            drain_timeout: Duration::from_secs(5),
            max_line_bytes: 1 << 20,
            telemetry: None,
        }
    }
}

fn take_value<'a>(
    argv: &'a [String],
    i: &mut usize,
    flag: &str,
) -> Result<&'a str, String> {
    *i += 1;
    argv.get(*i)
        .map(String::as_str)
        .ok_or_else(|| format!("{flag} requires a value"))
}

/// Parse a human duration: `500ms`, `2s`, `5m`, `1h`, or a bare number of
/// seconds. Fractions are fine (`1.5s`, `0.25m`, `0.5h`).
pub fn parse_duration(s: &str) -> Result<Duration, String> {
    let (number, scale) = if let Some(n) = s.strip_suffix("ms") {
        (n, 1e-3)
    } else if let Some(n) = s.strip_suffix('s') {
        (n, 1.0)
    } else if let Some(n) = s.strip_suffix('m') {
        (n, 60.0)
    } else if let Some(n) = s.strip_suffix('h') {
        (n, 3600.0)
    } else {
        (s, 1.0)
    };
    let value: f64 = number
        .parse()
        .map_err(|_| format!("bad duration `{s}` (expected e.g. 500ms, 2s, 5m, 1h)"))?;
    if !(value.is_finite() && value > 0.0) {
        return Err(format!("duration `{s}` must be positive and finite"));
    }
    Ok(Duration::from_secs_f64(value * scale))
}

/// Parse the shared flag set of `train` and `resume`.
fn parse_train_args(argv: &[String], sub: &str) -> Result<TrainArgs, String> {
    let mut a = TrainArgs::default();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--train" => a.train = take_value(argv, &mut i, "--train")?.into(),
            "--out" => a.out = take_value(argv, &mut i, "--out")?.into(),
            "--variant" => a.variant = take_value(argv, &mut i, "--variant")?.into(),
            "--p" => {
                a.p = take_value(argv, &mut i, "--p")?
                    .parse()
                    .map_err(|_| "--p expects a float".to_string())?
            }
            "--snp" => a.snp = true,
            "--seed" => {
                a.seed = take_value(argv, &mut i, "--seed")?
                    .parse()
                    .map_err(|_| "--seed expects an integer".to_string())?
            }
            "--journal" => a.journals.push(take_value(argv, &mut i, "--journal")?.into()),
            "--deadline" => {
                a.deadline = Some(parse_duration(take_value(argv, &mut i, "--deadline")?)?)
            }
            "--shards" => {
                a.shards = Some(
                    take_value(argv, &mut i, "--shards")?
                        .parse()
                        .ok()
                        .filter(|&n: &usize| n >= 1)
                        .ok_or_else(|| "--shards expects an integer >= 1".to_string())?,
                )
            }
            "--shard-worker" => {
                let spec = take_value(argv, &mut i, "--shard-worker")?;
                let parsed = spec.split_once('/').and_then(|(k, n)| {
                    let k: usize = k.parse().ok()?;
                    let n: usize = n.parse().ok()?;
                    (k < n).then_some((k, n))
                });
                a.shard_worker = Some(parsed.ok_or_else(|| {
                    format!("--shard-worker expects K/N with K < N, got `{spec}`")
                })?);
            }
            "--shard-fault" => {
                a.shard_fault = Some(take_value(argv, &mut i, "--shard-fault")?.to_string())
            }
            "--shard-retries" => {
                a.shard_retries = Some(
                    take_value(argv, &mut i, "--shard-retries")?
                        .parse()
                        .map_err(|_| "--shard-retries expects an integer".to_string())?,
                )
            }
            "--shard-heartbeat" => {
                a.shard_heartbeat =
                    Some(parse_duration(take_value(argv, &mut i, "--shard-heartbeat")?)?)
            }
            "--shard-backoff" => {
                a.shard_backoff =
                    Some(parse_duration(take_value(argv, &mut i, "--shard-backoff")?)?)
            }
            "--telemetry" => {
                a.telemetry = Some(take_value(argv, &mut i, "--telemetry")?.into())
            }
            "--kernel-tier" => {
                a.kernel_tier = Some(take_value(argv, &mut i, "--kernel-tier")?.to_string())
            }
            "--solver-strategy" => {
                a.solver_strategy =
                    Some(take_value(argv, &mut i, "--solver-strategy")?.to_string())
            }
            other => return Err(format!("unknown flag `{other}` for {sub}")),
        }
        i += 1;
    }
    if a.train.as_os_str().is_empty() || a.out.as_os_str().is_empty() {
        return Err(format!("{sub} requires --train and --out"));
    }
    if !(a.p > 0.0 && a.p <= 1.0) {
        return Err("--p must be in (0, 1]".into());
    }
    if sub == "train" && a.journals.len() > 1 {
        return Err("train takes at most one --journal (resume accepts several)".into());
    }
    if a.shards.is_some() && a.shard_worker.is_some() {
        return Err("--shards and --shard-worker are mutually exclusive".into());
    }
    if (a.shards.is_some() || a.shard_worker.is_some()) && a.journals.len() != 1 {
        return Err("--shards needs exactly one --journal (the shard journal base)".into());
    }
    Ok(a)
}

/// Parse an argv (without the program name).
pub fn parse(argv: &[String]) -> Result<Command, String> {
    let sub = argv.first().map(String::as_str).unwrap_or("help");
    match sub {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "train" => Ok(Command::Train(parse_train_args(argv, "train")?)),
        "resume" => {
            let a = parse_train_args(argv, "resume")?;
            if a.journals.is_empty() {
                return Err("resume requires --journal".into());
            }
            Ok(Command::Resume(a))
        }
        "score" => {
            let mut a = ScoreArgs::default();
            let mut i = 1;
            while i < argv.len() {
                match argv[i].as_str() {
                    "--train" => a.train = take_value(argv, &mut i, "--train")?.into(),
                    "--model" => a.model = Some(take_value(argv, &mut i, "--model")?.into()),
                    "--test" => a.test = take_value(argv, &mut i, "--test")?.into(),
                    "--variant" => a.variant = take_value(argv, &mut i, "--variant")?.into(),
                    "--p" => {
                        a.p = take_value(argv, &mut i, "--p")?
                            .parse()
                            .map_err(|_| "--p expects a float".to_string())?
                    }
                    "--members" => {
                        a.members = take_value(argv, &mut i, "--members")?
                            .parse()
                            .map_err(|_| "--members expects an integer".to_string())?
                    }
                    "--dim" => {
                        a.dim = take_value(argv, &mut i, "--dim")?
                            .parse()
                            .map_err(|_| "--dim expects an integer".to_string())?
                    }
                    "--snp" => a.snp = true,
                    "--seed" => {
                        a.seed = take_value(argv, &mut i, "--seed")?
                            .parse()
                            .map_err(|_| "--seed expects an integer".to_string())?
                    }
                    "--labels" => a.labels = Some(take_value(argv, &mut i, "--labels")?.into()),
                    "--top-features" => {
                        a.top_features = take_value(argv, &mut i, "--top-features")?
                            .parse()
                            .map_err(|_| "--top-features expects an integer".to_string())?
                    }
                    other => return Err(format!("unknown flag `{other}` for score")),
                }
                i += 1;
            }
            if a.test.as_os_str().is_empty()
                || (a.train.as_os_str().is_empty() && a.model.is_none())
            {
                return Err("score requires --test and one of --train / --model".into());
            }
            if !(a.p > 0.0 && a.p <= 1.0) {
                return Err("--p must be in (0, 1]".into());
            }
            Ok(Command::Score(a))
        }
        "entropy" => {
            let mut data = PathBuf::new();
            let mut top = 20usize;
            let mut i = 1;
            while i < argv.len() {
                match argv[i].as_str() {
                    "--data" => data = take_value(argv, &mut i, "--data")?.into(),
                    "--top" => {
                        top = take_value(argv, &mut i, "--top")?
                            .parse()
                            .map_err(|_| "--top expects an integer".to_string())?
                    }
                    other => return Err(format!("unknown flag `{other}` for entropy")),
                }
                i += 1;
            }
            if data.as_os_str().is_empty() {
                return Err("entropy requires --data".into());
            }
            Ok(Command::Entropy { data, top })
        }
        "inspect-telemetry" => {
            let mut file = PathBuf::new();
            let mut top = 10usize;
            let mut i = 1;
            while i < argv.len() {
                match argv[i].as_str() {
                    "--file" => file = take_value(argv, &mut i, "--file")?.into(),
                    "--top" => {
                        top = take_value(argv, &mut i, "--top")?
                            .parse()
                            .map_err(|_| "--top expects an integer".to_string())?
                    }
                    other => {
                        return Err(format!("unknown flag `{other}` for inspect-telemetry"))
                    }
                }
                i += 1;
            }
            if file.as_os_str().is_empty() {
                return Err("inspect-telemetry requires --file".into());
            }
            Ok(Command::InspectTelemetry { file, top })
        }
        "serve" => {
            let mut a = ServeArgs::default();
            let mut i = 1;
            while i < argv.len() {
                match argv[i].as_str() {
                    "--model" => a.model = take_value(argv, &mut i, "--model")?.into(),
                    "--schema" => a.schema = take_value(argv, &mut i, "--schema")?.into(),
                    "--listen" => {
                        a.listen = Some(take_value(argv, &mut i, "--listen")?.to_string())
                    }
                    "--batch-max" => {
                        a.batch_max = take_value(argv, &mut i, "--batch-max")?
                            .parse()
                            .ok()
                            .filter(|&n: &usize| n >= 1)
                            .ok_or_else(|| "--batch-max expects an integer >= 1".to_string())?
                    }
                    "--queue-cap" => {
                        a.queue_cap = take_value(argv, &mut i, "--queue-cap")?
                            .parse()
                            .ok()
                            .filter(|&n: &usize| n >= 1)
                            .ok_or_else(|| "--queue-cap expects an integer >= 1".to_string())?
                    }
                    "--request-timeout" => {
                        a.request_timeout =
                            parse_duration(take_value(argv, &mut i, "--request-timeout")?)?
                    }
                    "--drain-timeout" => {
                        a.drain_timeout =
                            parse_duration(take_value(argv, &mut i, "--drain-timeout")?)?
                    }
                    "--max-line-bytes" => {
                        a.max_line_bytes = take_value(argv, &mut i, "--max-line-bytes")?
                            .parse()
                            .ok()
                            .filter(|&n: &usize| n >= 1)
                            .ok_or_else(|| {
                                "--max-line-bytes expects an integer >= 1".to_string()
                            })?
                    }
                    "--telemetry" => {
                        a.telemetry = Some(take_value(argv, &mut i, "--telemetry")?.into())
                    }
                    other => return Err(format!("unknown flag `{other}` for serve")),
                }
                i += 1;
            }
            if a.model.as_os_str().is_empty() || a.schema.as_os_str().is_empty() {
                return Err("serve requires --model and --schema".into());
            }
            Ok(Command::Serve(a))
        }
        "pack" => {
            let mut data = PathBuf::new();
            let mut out = PathBuf::new();
            let mut chunk_rows = 8192usize;
            let mut i = 1;
            while i < argv.len() {
                match argv[i].as_str() {
                    "--data" => data = take_value(argv, &mut i, "--data")?.into(),
                    "--out" => out = take_value(argv, &mut i, "--out")?.into(),
                    "--chunk-rows" => {
                        chunk_rows = take_value(argv, &mut i, "--chunk-rows")?
                            .parse()
                            .ok()
                            .filter(|&n: &usize| n >= 1)
                            .ok_or_else(|| "--chunk-rows expects an integer >= 1".to_string())?
                    }
                    other => return Err(format!("unknown flag `{other}` for pack")),
                }
                i += 1;
            }
            if data.as_os_str().is_empty() || out.as_os_str().is_empty() {
                return Err("pack requires --data and --out".into());
            }
            Ok(Command::Pack { data, out, chunk_rows })
        }
        "info" => {
            let mut data = PathBuf::new();
            let mut i = 1;
            while i < argv.len() {
                match argv[i].as_str() {
                    "--data" => data = take_value(argv, &mut i, "--data")?.into(),
                    other => return Err(format!("unknown flag `{other}` for info")),
                }
                i += 1;
            }
            if data.as_os_str().is_empty() {
                return Err("info requires --data".into());
            }
            Ok(Command::Info { data })
        }
        "generate" => {
            let mut dataset = String::new();
            let mut out = PathBuf::new();
            let mut seed = 0u64;
            let mut seed_given = false;
            let mut i = 1;
            while i < argv.len() {
                match argv[i].as_str() {
                    "--dataset" => dataset = take_value(argv, &mut i, "--dataset")?.into(),
                    "--out" => out = take_value(argv, &mut i, "--out")?.into(),
                    "--seed" => {
                        seed = take_value(argv, &mut i, "--seed")?
                            .parse()
                            .map_err(|_| "--seed expects an integer".to_string())?;
                        seed_given = true;
                    }
                    other => return Err(format!("unknown flag `{other}` for generate")),
                }
                i += 1;
            }
            if dataset.is_empty() || out.as_os_str().is_empty() {
                return Err("generate requires --dataset and --out".into());
            }
            if !seed_given {
                seed = frac_synth::registry::lookup(&dataset)
                    .ok_or_else(|| {
                        format!(
                            "unknown dataset `{dataset}`; valid names: {:?}",
                            frac_synth::registry::PAPER_DATASETS
                        )
                    })?
                    .default_seed;
            }
            Ok(Command::Generate { dataset, out, seed })
        }
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_minimal_score() {
        let cmd = parse(&argv("score --train a.tsv --test b.tsv")).unwrap();
        match cmd {
            Command::Score(a) => {
                assert_eq!(a.train, PathBuf::from("a.tsv"));
                assert_eq!(a.variant, "filter-ens");
                assert_eq!(a.members, 10);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_all_score_flags() {
        let cmd = parse(&argv(
            "score --train a --test b --variant jl --dim 32 --p 0.1 --members 4 \
             --snp --seed 7 --labels l.txt --top-features 5",
        ))
        .unwrap();
        match cmd {
            Command::Score(a) => {
                assert_eq!(a.variant, "jl");
                assert_eq!(a.dim, 32);
                assert_eq!(a.p, 0.1);
                assert_eq!(a.members, 4);
                assert!(a.snp);
                assert_eq!(a.seed, 7);
                assert_eq!(a.labels, Some(PathBuf::from("l.txt")));
                assert_eq!(a.top_features, 5);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn score_requires_both_files() {
        assert!(parse(&argv("score --train a.tsv")).is_err());
    }

    #[test]
    fn rejects_bad_p() {
        assert!(parse(&argv("score --train a --test b --p 1.5")).is_err());
        assert!(parse(&argv("score --train a --test b --p abc")).is_err());
    }

    #[test]
    fn parses_entropy_and_generate() {
        assert_eq!(
            parse(&argv("entropy --data x.tsv --top 5")).unwrap(),
            Command::Entropy { data: "x.tsv".into(), top: 5 }
        );
        match parse(&argv("generate --dataset autism --out /tmp/x")).unwrap() {
            Command::Generate { dataset, seed, .. } => {
                assert_eq!(dataset, "autism");
                // Default seed comes from the registry.
                assert_eq!(seed, frac_synth::registry::spec("autism").default_seed);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn unknown_flags_and_subcommands_rejected() {
        assert!(parse(&argv("score --train a --test b --bogus 1")).is_err());
        assert!(parse(&argv("frobnicate")).is_err());
    }

    #[test]
    fn generate_with_unknown_dataset_is_an_error_not_a_panic() {
        let err = parse(&argv("generate --dataset nope --out /tmp/x")).unwrap_err();
        assert!(err.contains("unknown dataset `nope`"), "{err}");
        assert!(err.contains("breast.basal"), "should list valid names: {err}");
        // An explicit seed defers the name check to the generate command.
        assert!(parse(&argv("generate --dataset nope --out /tmp/x --seed 1")).is_ok());
    }

    #[test]
    fn parses_pack_and_info() {
        assert_eq!(
            parse(&argv("pack --data a.tsv --out a.fcb")).unwrap(),
            Command::Pack { data: "a.tsv".into(), out: "a.fcb".into(), chunk_rows: 8192 }
        );
        assert_eq!(
            parse(&argv("pack --data a.tsv --out a.fcb --chunk-rows 64")).unwrap(),
            Command::Pack { data: "a.tsv".into(), out: "a.fcb".into(), chunk_rows: 64 }
        );
        assert_eq!(
            parse(&argv("info --data a.fcb")).unwrap(),
            Command::Info { data: "a.fcb".into() }
        );
        assert!(parse(&argv("pack --data a.tsv")).is_err());
        assert!(parse(&argv("pack --data a.tsv --out a.fcb --chunk-rows 0")).is_err());
        assert!(parse(&argv("info")).is_err());
        assert!(parse(&argv("info --bogus x")).is_err());
    }

    #[test]
    fn empty_argv_is_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
    }

    #[test]
    fn parses_durations() {
        assert_eq!(parse_duration("500ms").unwrap(), Duration::from_millis(500));
        assert_eq!(parse_duration("2s").unwrap(), Duration::from_secs(2));
        assert_eq!(parse_duration("5m").unwrap(), Duration::from_secs(300));
        assert_eq!(parse_duration("7").unwrap(), Duration::from_secs(7));
        assert_eq!(parse_duration("1.5s").unwrap(), Duration::from_millis(1500));
        assert_eq!(parse_duration("1h").unwrap(), Duration::from_secs(3600));
        assert_eq!(parse_duration("0.5h").unwrap(), Duration::from_secs(1800));
        assert!(parse_duration("abc").is_err());
        assert!(parse_duration("-2s").is_err());
        assert!(parse_duration("0s").is_err());
        assert!(parse_duration("-1h").is_err());
        assert!(parse_duration("").is_err());
        assert!(parse_duration("h").is_err());
    }

    #[test]
    fn parses_serve_defaults_and_flags() {
        match parse(&argv("serve --model m.frac --schema train.tsv")).unwrap() {
            Command::Serve(a) => {
                assert_eq!(a.model, PathBuf::from("m.frac"));
                assert_eq!(a.schema, PathBuf::from("train.tsv"));
                assert_eq!(a.listen, None);
                assert_eq!(a.batch_max, 64);
                assert_eq!(a.queue_cap, 1024);
                assert_eq!(a.request_timeout, Duration::from_secs(5));
                assert_eq!(a.drain_timeout, Duration::from_secs(5));
                assert_eq!(a.max_line_bytes, 1 << 20);
                assert_eq!(a.telemetry, None);
            }
            _ => panic!(),
        }
        match parse(&argv(
            "serve --model m --schema s --listen 127.0.0.1:0 --batch-max 8 \
             --queue-cap 2 --request-timeout 250ms --drain-timeout 1h \
             --max-line-bytes 4096 --telemetry t.tsv",
        ))
        .unwrap()
        {
            Command::Serve(a) => {
                assert_eq!(a.listen.as_deref(), Some("127.0.0.1:0"));
                assert_eq!(a.batch_max, 8);
                assert_eq!(a.queue_cap, 2);
                assert_eq!(a.request_timeout, Duration::from_millis(250));
                assert_eq!(a.drain_timeout, Duration::from_secs(3600));
                assert_eq!(a.max_line_bytes, 4096);
                assert_eq!(a.telemetry, Some(PathBuf::from("t.tsv")));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn serve_validates_its_flags() {
        assert!(parse(&argv("serve --model m.frac")).is_err());
        assert!(parse(&argv("serve --schema s.tsv")).is_err());
        assert!(parse(&argv("serve --model m --schema s --batch-max 0")).is_err());
        assert!(parse(&argv("serve --model m --schema s --queue-cap 0")).is_err());
        assert!(parse(&argv("serve --model m --schema s --request-timeout 0s")).is_err());
        assert!(parse(&argv("serve --model m --schema s --bogus 1")).is_err());
    }

    #[test]
    fn parses_train_journal_and_deadline() {
        let cmd = parse(&argv(
            "train --train a.tsv --out m.frac --journal j.frj --deadline 2s",
        ))
        .unwrap();
        match cmd {
            Command::Train(a) => {
                assert_eq!(a.journal(), Some(&PathBuf::from("j.frj")));
                assert_eq!(a.deadline, Some(Duration::from_secs(2)));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_shard_flags() {
        let cmd = parse(&argv(
            "train --train a.tsv --out m.frac --journal j.frj --shards 4 \
             --shard-retries 2 --shard-heartbeat 10s --shard-backoff 100ms",
        ))
        .unwrap();
        match cmd {
            Command::Train(a) => {
                assert_eq!(a.shards, Some(4));
                assert_eq!(a.shard_retries, Some(2));
                assert_eq!(a.shard_heartbeat, Some(Duration::from_secs(10)));
                assert_eq!(a.shard_backoff, Some(Duration::from_millis(100)));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn shard_flags_are_validated() {
        // --shards needs a journal to shard.
        assert!(parse(&argv("train --train a --out m --shards 2")).is_err());
        assert!(parse(&argv("train --train a --out m --journal j --shards 0")).is_err());
        // Worker mode parses K/N and rejects K >= N.
        match parse(&argv(
            "train --train a --out m --journal j --shard-worker 1/3",
        ))
        .unwrap()
        {
            Command::Train(a) => assert_eq!(a.shard_worker, Some((1, 3))),
            _ => panic!(),
        }
        assert!(parse(&argv(
            "train --train a --out m --journal j --shard-worker 3/3"
        ))
        .is_err());
        assert!(parse(&argv(
            "train --train a --out m --journal j --shards 2 --shard-worker 0/2"
        ))
        .is_err());
        // Plain train takes at most one journal.
        assert!(parse(&argv(
            "train --train a --out m --journal j1 --journal j2"
        ))
        .is_err());
    }

    #[test]
    fn parses_train_telemetry_flag() {
        let cmd = parse(&argv(
            "train --train a.tsv --out m.frac --telemetry t.tsv --deadline 2s",
        ))
        .unwrap();
        match cmd {
            Command::Train(a) => {
                assert_eq!(a.telemetry, Some(PathBuf::from("t.tsv")));
                assert_eq!(a.deadline, Some(Duration::from_secs(2)));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_train_kernel_tier_flag() {
        let cmd = parse(&argv(
            "train --train a.tsv --out m.frac --kernel-tier unrolled",
        ))
        .unwrap();
        match cmd {
            Command::Train(a) => assert_eq!(a.kernel_tier.as_deref(), Some("unrolled")),
            _ => panic!(),
        }
        // No flag: no override.
        match parse(&argv("train --train a.tsv --out m.frac")).unwrap() {
            Command::Train(a) => assert_eq!(a.kernel_tier, None),
            _ => panic!(),
        }
    }

    #[test]
    fn parses_train_solver_strategy_flag() {
        let cmd = parse(&argv(
            "train --train a.tsv --out m.frac --solver-strategy gram",
        ))
        .unwrap();
        match cmd {
            Command::Train(a) => assert_eq!(a.solver_strategy.as_deref(), Some("gram")),
            _ => panic!(),
        }
        // No flag: no override.
        match parse(&argv("train --train a.tsv --out m.frac")).unwrap() {
            Command::Train(a) => assert_eq!(a.solver_strategy, None),
            _ => panic!(),
        }
    }

    #[test]
    fn parses_inspect_telemetry() {
        assert_eq!(
            parse(&argv("inspect-telemetry --file t.tsv --top 3")).unwrap(),
            Command::InspectTelemetry { file: "t.tsv".into(), top: 3 }
        );
        // Default top-k and the required-file error.
        assert_eq!(
            parse(&argv("inspect-telemetry --file t.tsv")).unwrap(),
            Command::InspectTelemetry { file: "t.tsv".into(), top: 10 }
        );
        assert!(parse(&argv("inspect-telemetry")).is_err());
    }

    #[test]
    fn resume_requires_a_journal() {
        assert!(parse(&argv("resume --train a.tsv --out m.frac")).is_err());
        let cmd =
            parse(&argv("resume --train a.tsv --out m.frac --journal j.frj")).unwrap();
        match cmd {
            Command::Resume(a) => assert_eq!(a.journal(), Some(&PathBuf::from("j.frj"))),
            _ => panic!(),
        }
        // Sharded runs resume with one --journal per shard journal.
        let cmd = parse(&argv(
            "resume --train a.tsv --out m.frac --journal j.frj.s0-2 --journal j.frj.s1-2",
        ))
        .unwrap();
        match cmd {
            Command::Resume(a) => assert_eq!(a.journals.len(), 2),
            _ => panic!(),
        }
    }
}
