//! Command implementations.

use crate::args::{Command, ScoreArgs, ServeArgs, TrainArgs, USAGE};
use frac_core::shard::{
    apply_worker_faults_from_env, expand_journal_paths, resume_shards, shard_journal_path,
    shard_set, train_sharded,
};
use frac_core::telemetry::{Counter, TelemetryReport, TelemetrySession};
use frac_core::{
    run_variant, FaultPlan, FeatureSelector, FracConfig, FracModel, JournaledFit, RunBudget,
    ServeConfig, Server, ShardOptions, ShardStat, SolverStrategy, TrainingPlan, Variant,
};
use std::time::Duration;
use frac_dataset::io::{read_tsv, write_tsv};
use frac_eval::auc::auc_from_scores;
use frac_projection::JlMatrixKind;
use frac_synth::registry::{lookup, make_dataset, PAPER_DATASETS};

type Error = Box<dyn std::error::Error>;

/// Read a data set, dispatching on the extension: `.fcb` files are
/// memory-mapped and fully verified (every CRC, geometry, code ranges),
/// anything else is parsed as TSV. Training or scoring from either format
/// yields bit-identical results. Errors name the offending path so the
/// user knows which of several input files failed.
fn read_data_at(path: &std::path::Path) -> Result<frac_dataset::Dataset, Error> {
    if frac_dataset::fcb::is_fcb_path(path) {
        Ok(frac_dataset::FcbFile::open(path)?.dataset())
    } else {
        read_tsv(path).map_err(|e| format!("{}: {e}", path.display()).into())
    }
}

/// Parse a labels file: one 0/1 token per test row, strictly validated.
fn read_labels(path: &std::path::Path, n_rows: usize) -> Result<Vec<bool>, Error> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    let labels: Vec<bool> = text
        .split_whitespace()
        .map(|t| match t {
            "0" => Ok(false),
            "1" => Ok(true),
            other => Err(format!("{}: bad label `{other}` (expected 0/1)", path.display())),
        })
        .collect::<Result<_, _>>()?;
    if labels.len() != n_rows {
        return Err(format!(
            "{}: {} labels for {} test rows",
            path.display(),
            labels.len(),
            n_rows
        )
        .into());
    }
    Ok(labels)
}

/// Execute a parsed command.
pub fn run(cmd: Command) -> Result<(), Error> {
    match cmd {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::Train(args) => train(args, false),
        Command::Resume(args) => train(args, true),
        Command::Score(args) => score(args),
        Command::Entropy { data, top } => entropy(&data, top),
        Command::InspectTelemetry { file, top } => inspect_telemetry(&file, top),
        Command::Serve(args) => serve(args),
        Command::Pack { data, out, chunk_rows } => pack(&data, &out, chunk_rows),
        Command::Info { data } => info(&data),
        Command::Generate { dataset, out, seed } => generate(&dataset, &out, seed),
    }
}

/// `frac pack`: convert a TSV data set to FCB, streaming with a bounded
/// row buffer so inputs larger than RAM pack fine.
fn pack(data: &std::path::Path, out: &std::path::Path, chunk_rows: usize) -> Result<(), Error> {
    if frac_dataset::fcb::is_fcb_path(data) {
        return Err(format!("{}: already an FCB file (pack reads TSV)", data.display()).into());
    }
    let stats = frac_dataset::fcb::pack_tsv(data, out, chunk_rows)?;
    println!(
        "packed {} rows -> {} ({} bytes; chunk {} rows, peak buffer {} bytes)",
        stats.rows,
        out.display(),
        stats.file_bytes,
        stats.chunk_rows,
        stats.peak_buffer_bytes
    );
    Ok(())
}

/// `frac info`: validate an FCB file (opening runs the full integrity
/// pass) and dump its header and checksums as TSV.
fn info(data: &std::path::Path) -> Result<(), Error> {
    let file = frac_dataset::FcbFile::open(data)?;
    let info = file.info();
    println!("file\t{}", data.display());
    println!("format\tfcb v{}", info.version);
    println!("rows\t{}", info.n_rows);
    println!("features\t{}", info.n_features);
    println!("schema_fnv\t{:016x}", info.schema_fnv);
    println!("file_bytes\t{}", info.file_len);
    println!("file_crc\t{:08x}", info.file_crc);
    println!("column\tname\tkind\tmissing\tvalue_bytes\tvalues_crc\tmissing_crc");
    for c in &info.columns {
        println!(
            "column\t{}\t{}\t{}\t{}\t{:08x}\t{:08x}",
            c.name, c.kind, c.n_missing, c.values_len, c.values_crc, c.missing_crc
        );
    }
    Ok(())
}

/// `frac serve`: load the model once, then score streaming records until
/// EOF, `cmd stop`, or `SIGTERM`. See `frac_core::serve` for the protocol
/// and robustness guarantees; this function only does process plumbing —
/// signal handlers, the listener/pipe choice, and the exit telemetry.
fn serve(args: ServeArgs) -> Result<(), Error> {
    use std::io::BufRead;
    // --schema accepts either format. For a TSV only the header line is
    // read (pointing it at the full training file is the expected usage);
    // for an `.fcb` file the embedded, CRC-verified schema block is used.
    let schema = if frac_dataset::fcb::is_fcb_path(&args.schema) {
        frac_dataset::FcbFile::open(&args.schema)?.schema().clone()
    } else {
        let header = {
            let file = std::fs::File::open(&args.schema)
                .map_err(|e| format!("{}: {e}", args.schema.display()))?;
            let mut line = String::new();
            std::io::BufReader::new(file)
                .read_line(&mut line)
                .map_err(|e| format!("{}: {e}", args.schema.display()))?;
            line
        };
        frac_dataset::io::schema_from_header(&header)
            .map_err(|e| format!("{}: {e}", args.schema.display()))?
    };
    // `FracModel::load` errors already name the path.
    let model = FracModel::load(&args.model).map_err(|e| e.to_string())?;
    let n_targets = model.n_targets();
    let cfg = ServeConfig {
        batch_max: args.batch_max,
        queue_cap: args.queue_cap,
        request_timeout: args.request_timeout,
        drain_timeout: args.drain_timeout,
        max_line_bytes: args.max_line_bytes,
        score_delay: None,
    };
    let server = Server::new(model, args.model.clone(), schema, cfg)
        .map_err(|e| format!("{}: {e}", args.model.display()))?;
    let handle = server.handle();
    let session = if args.telemetry.is_some() { TelemetrySession::start() } else { None };
    crate::signals::install();
    {
        // Signal watcher: handlers may only flip atomics, so a plain thread
        // forwards the flags to the daemon (SIGTERM → drain, SIGHUP →
        // validated hot reload).
        let handle = handle.clone();
        std::thread::spawn(move || loop {
            if crate::signals::termination_requested() {
                handle.request_shutdown();
                return;
            }
            if crate::signals::take_reload() {
                eprintln!("frac serve: SIGHUP: reloading model (validated off-path)");
                handle.request_reload();
            }
            std::thread::sleep(Duration::from_millis(20));
        });
    }
    let summary = match &args.listen {
        Some(addr) => {
            let listener =
                std::net::TcpListener::bind(addr).map_err(|e| format!("{addr}: {e}"))?;
            let local = listener.local_addr().map_err(|e| e.to_string())?;
            eprintln!(
                "frac serve: listening on {local} ({}: {n_targets} targets)",
                args.model.display()
            );
            server.serve_listener(listener)?
        }
        None => {
            eprintln!(
                "frac serve: pipe mode, reading records from stdin \
                 ({}: {n_targets} targets)",
                args.model.display()
            );
            server.serve_pipe(std::io::stdin(), std::io::stdout())?
        }
    };
    eprintln!("frac serve: exit: {}", summary.render());
    if let Some(tpath) = &args.telemetry {
        match session {
            Some(s) => {
                let mut trace = s.finish();
                trace.notes.push(("serve_health".into(), summary.counts.summary()));
                trace.notes.push(("serve_p50_us".into(), summary.p50_us.to_string()));
                trace.notes.push(("serve_p99_us".into(), summary.p99_us.to_string()));
                trace
                    .notes
                    .push(("serve_throughput_rps".into(), format!("{:.1}", summary.throughput_rps())));
                let text = if tpath.extension().is_some_and(|e| e == "json") {
                    trace.to_json()
                } else {
                    trace.write_tsv()
                };
                std::fs::write(tpath, text).map_err(|e| format!("{}: {e}", tpath.display()))?;
                eprintln!(
                    "telemetry: {} spans → {} (summarize with \
                     `frac inspect-telemetry --file {}`)",
                    trace.spans.len(),
                    tpath.display(),
                    tpath.display()
                );
            }
            None => eprintln!(
                "warning: --telemetry ignored: another telemetry session \
                 is already active in this process"
            ),
        }
    }
    Ok(())
}

/// Build the requested variant from CLI flags.
fn variant_from(args: &ScoreArgs) -> Result<Variant, Error> {
    Ok(match args.variant.as_str() {
        "full" => Variant::Full,
        "filter" => Variant::FullFilter { selector: FeatureSelector::Random, p: args.p },
        "filter-ens" => Variant::Ensemble {
            base: Box::new(Variant::FullFilter {
                selector: FeatureSelector::Random,
                p: args.p,
            }),
            members: args.members,
        },
        "entropy" => Variant::FullFilter { selector: FeatureSelector::Entropy, p: args.p },
        "diverse" => Variant::Diverse { p: args.p.max(0.01), models_per_feature: 1 },
        "jl" => Variant::JlProject { dim: args.dim, kind: JlMatrixKind::Gaussian },
        other => return Err(format!("unknown variant `{other}`").into()),
    })
}

fn train(args: TrainArgs, resuming: bool) -> Result<(), Error> {
    if let Some(name) = &args.kernel_tier {
        let requested = frac_dataset::kernels::KernelTier::parse(name)
            .ok_or_else(|| format!("unknown kernel tier `{name}` (unrolled | avx2)"))?;
        if !requested.supported() {
            return Err(format!("kernel tier `{requested}` is not supported on this CPU").into());
        }
        let active = frac_dataset::kernels::force_tier(Some(requested));
        eprintln!("kernel tier forced: {active}");
    }
    let train = read_data_at(&args.train)?;
    let mut config = if args.snp {
        FracConfig::snp().with_seed(args.seed)
    } else {
        FracConfig::default().with_seed(args.seed)
    };
    if let Some(name) = &args.solver_strategy {
        let strategy = SolverStrategy::parse(name)
            .ok_or_else(|| format!("unknown solver strategy `{name}` (auto | gram | primal)"))?;
        config = config.with_solver_strategy(strategy);
        eprintln!("solver strategy: {strategy}");
    }
    let plan = match args.variant.as_str() {
        "full" => TrainingPlan::full(train.n_features()),
        "filter" => {
            let selected = FeatureSelector::Random.select(&train, args.p, args.seed);
            TrainingPlan::full_filtered(&selected)
        }
        "entropy" => {
            let selected = FeatureSelector::Entropy.select(&train, args.p, args.seed);
            TrainingPlan::full_filtered(&selected)
        }
        other => {
            return Err(format!(
                "unknown train variant `{other}` (full | filter | entropy)"
            )
            .into())
        }
    };
    let budget = match args.deadline {
        Some(d) => RunBudget::with_deadline(d),
        None => RunBudget::unlimited(),
    };
    // Hidden worker mode: fit our shard into its journal and exit. The
    // supervisor owns model assembly, so a worker saves nothing.
    if let Some((k, n)) = args.shard_worker {
        let base = args.journal().ok_or("--shard-worker requires --journal")?;
        apply_worker_faults_from_env(&shard_journal_path(base, k, n));
        let fit = frac_core::shard::worker_run(&train, &plan, &config, &budget, base, k, n)?;
        eprintln!(
            "shard {k}/{n}: {} target(s) journaled ({} restored)",
            fit.model.n_targets(),
            fit.resumed
        );
        return Ok(());
    }
    eprintln!(
        "{} {} on {} samples × {} features ({} targets{})…",
        if resuming { "resuming" } else { "fitting" },
        args.variant,
        train.n_rows(),
        train.n_features(),
        plan.n_targets(),
        match args.deadline {
            Some(d) => format!(", deadline {d:?}"),
            None => String::new(),
        }
    );
    // Start tracing before any fit work so the encode/quarantine spans are
    // captured too. `start()` only refuses if another session is live in
    // this process, which the single-run CLI never does.
    let session = if args.telemetry.is_some() { TelemetrySession::start() } else { None };
    let mut shard_stats: Option<Vec<ShardStat>> = None;
    let (model, mut report) = if let Some(n_shards) = args.shards {
        // `--shards N` supervisor: spawn N worker re-invocations of this
        // binary, each journaling its own shard; merge is bit-identical to
        // a single-process run.
        let base = args.journal().ok_or("--shards requires --journal")?.clone();
        let opts = shard_options_from(&args);
        let faults = match &args.shard_fault {
            Some(spec) => parse_shard_faults(spec)?,
            None => FaultPlan::none(),
        };
        let exe = std::env::current_exe()
            .map_err(|e| format!("cannot locate own binary to spawn workers: {e}"))?;
        let mut spawn = |k: usize, remaining: Option<Duration>| {
            let mut cmd = std::process::Command::new(&exe);
            cmd.arg("train")
                .arg("--train")
                .arg(&args.train)
                .arg("--out")
                .arg(&args.out)
                .arg("--variant")
                .arg(&args.variant)
                .arg("--p")
                .arg(args.p.to_string())
                .arg("--seed")
                .arg(args.seed.to_string())
                .arg("--journal")
                .arg(&base)
                .arg("--shard-worker")
                .arg(format!("{k}/{n_shards}"));
            if args.snp {
                cmd.arg("--snp");
            }
            if let Some(t) = &args.kernel_tier {
                cmd.args(["--kernel-tier", t]);
            }
            if let Some(s) = &args.solver_strategy {
                cmd.args(["--solver-strategy", s]);
            }
            if let Some(d) = remaining {
                // Deadlines don't cross process boundaries as instants; a
                // duration re-anchored at worker startup does.
                cmd.arg("--deadline").arg(format!("{}ms", d.as_millis().max(1)));
            }
            for (key, value) in faults.worker_env(k) {
                cmd.env(key, value);
            }
            cmd.stdout(std::process::Stdio::null()).stderr(std::process::Stdio::null());
            cmd.spawn()
        };
        let run = train_sharded(
            &train,
            &plan,
            &config,
            &budget,
            &base,
            n_shards,
            &opts,
            &mut spawn,
            &mut |e| eprintln!("{e}"),
        )?;
        eprintln!(
            "shards merged: restarts per shard {:?}; worker-phase health: {}",
            run.model.shard_restarts(),
            run.journal_health.summary()
        );
        shard_stats = Some(run.stats);
        (run.model, run.report)
    } else if resuming {
        let paths = expand_journal_paths(&args.journals)
            .map_err(|e| format!("expanding --journal paths: {e}"))?;
        match shard_set(&paths)? {
            Some((base, n_shards)) => {
                // A directory of shard journals (or one --journal per
                // shard): complete each shard in-process, then merge.
                let run = resume_shards(
                    &train,
                    &plan,
                    &config,
                    &budget,
                    &base,
                    n_shards,
                    &mut |e| eprintln!("{e}"),
                )?;
                shard_stats = Some(run.stats);
                (run.model, run.report)
            }
            None => {
                let jpath = match paths.as_slice() {
                    [one] => one,
                    [] => return Err("resume found no journals to resume from".into()),
                    _ => {
                        return Err("resume takes one plain journal, or shard journals \
                                    that form one complete set"
                            .into())
                    }
                };
                let fit = FracModel::resume(&train, &plan, &config, &budget, jpath)
                    .map_err(|e| format!("{}: {e}", jpath.display()))?;
                report_journal_fit(&fit, jpath, plan.n_targets());
                (fit.model, fit.report)
            }
        }
    } else if let Some(jpath) = args.journal() {
        let fit = FracModel::fit_journaled(&train, &plan, &config, &budget, jpath)
            .map_err(|e| format!("{}: {e}", jpath.display()))?;
        report_journal_fit(&fit, jpath, plan.n_targets());
        (fit.model, fit.report)
    } else {
        FracModel::fit_budgeted(&train, &plan, &config, &budget)
    };
    if let Some(stats) = &shard_stats {
        for (k, s) in stats.iter().enumerate() {
            eprintln!(
                "shard {k}: {} planned, {} restart(s), {} from workers, {} reclaimed",
                s.planned, s.restarts, s.worker_records, s.reclaimed
            );
        }
    }
    if let Some(tpath) = &args.telemetry {
        match session {
            Some(s) => {
                let mut trace = s.finish();
                trace.notes.push(("health".into(), report.health.summary()));
                if let Some(stats) = &shard_stats {
                    let restarts: Vec<String> =
                        stats.iter().map(|s| s.restarts.to_string()).collect();
                    trace.notes.push(("shard_restarts".into(), restarts.join(" ")));
                }
                let text = if tpath.extension().is_some_and(|e| e == "json") {
                    trace.to_json()
                } else {
                    trace.write_tsv()
                };
                std::fs::write(tpath, text).map_err(|e| format!("{}: {e}", tpath.display()))?;
                eprintln!(
                    "telemetry: {} spans across {} stages → {} \
                     (summarize with `frac inspect-telemetry --file {}`)",
                    trace.spans.len(),
                    trace.stage_totals().len(),
                    tpath.display(),
                    tpath.display()
                );
                report.telemetry = Some(trace);
            }
            None => eprintln!(
                "warning: --telemetry ignored: another telemetry session \
                 is already active in this process"
            ),
        }
    }
    model.save(&args.out)?;
    eprintln!(
        "saved {} ({} feature models, {:.3} Gflop training)",
        args.out.display(),
        model.n_targets(),
        report.flops as f64 / 1e9
    );
    eprintln!("health: {}", report.health.summary());
    if args.deadline.is_some() && !report.health.is_clean() {
        eprintln!(
            "deadline run: every planned target is accounted (fitted, \
             baseline-substituted, or dropped); rerun with --journal and \
             `frac resume` to finish the remainder properly"
        );
    }
    Ok(())
}

/// Print the resume/degradation status of a journaled single-process fit.
fn report_journal_fit(fit: &JournaledFit, jpath: &std::path::Path, n_targets: usize) {
    if fit.resumed > 0 {
        eprintln!(
            "journal {}: {} of {} targets restored, fitting the rest",
            jpath.display(),
            fit.resumed,
            n_targets
        );
    }
    if fit.journal_broken {
        eprintln!(
            "warning: journal {} stopped accepting appends mid-run; \
             the model is complete but a crash would lose checkpoints",
            jpath.display()
        );
    }
}

/// Supervisor knobs from the CLI flags, defaulting per [`ShardOptions`].
fn shard_options_from(args: &TrainArgs) -> ShardOptions {
    let mut opts = ShardOptions::default();
    if let Some(r) = args.shard_retries {
        opts.retry_budget = r;
    }
    if let Some(h) = args.shard_heartbeat {
        opts.heartbeat_timeout = h;
    }
    if let Some(b) = args.shard_backoff {
        opts.backoff_base = b;
    }
    opts
}

/// Parse the hidden `--shard-fault` spec (comma-separated `crashloop:K` /
/// `abort-after:K:N`) into a process-level [`FaultPlan`].
fn parse_shard_faults(spec: &str) -> Result<FaultPlan, Error> {
    let bad = |part: &str| -> Error {
        format!("bad --shard-fault `{part}` (crashloop:K | abort-after:K:N)").into()
    };
    let mut plan = FaultPlan::none();
    for part in spec.split(',') {
        let fields: Vec<&str> = part.split(':').collect();
        plan = match fields.as_slice() {
            ["crashloop", k] => {
                plan.with_crashloop_at([k.parse().map_err(|_| bad(part))?])
            }
            ["abort-after", k, n] => plan.with_abort_after(
                k.parse().map_err(|_| bad(part))?,
                n.parse().map_err(|_| bad(part))?,
            ),
            _ => return Err(bad(part)),
        };
    }
    Ok(plan)
}

/// Score with a previously saved model.
fn score_with_model(args: &ScoreArgs, path: &std::path::Path) -> Result<(), Error> {
    let test = read_data_at(&args.test)?;
    // `FracModel::load` errors already name the path.
    let model = FracModel::load(path).map_err(|e| e.to_string())?;
    eprintln!(
        "loaded model: {}/{} planned targets survived; scoring {} samples…",
        model.n_targets(),
        model.planned_targets(),
        test.n_rows()
    );
    if model.n_targets() < model.planned_targets() {
        eprintln!("note: NS is renormalized over the surviving targets");
    }
    if !model.shard_restarts().is_empty() {
        eprintln!(
            "sharded run ({} shards): worker restarts per shard {:?}",
            model.shard_restarts().len(),
            model.shard_restarts()
        );
    }
    let contributions = model.contributions(&test);
    let ns = contributions.ns_scores();
    println!("sample\tns_score");
    for (r, v) in ns.iter().enumerate() {
        println!("{r}\t{v:.6}");
    }
    if let Some(lpath) = &args.labels {
        let labels = read_labels(lpath, ns.len())?;
        eprintln!("AUC = {:.4}", auc_from_scores(&ns, &labels));
    }
    Ok(())
}

fn score(args: ScoreArgs) -> Result<(), Error> {
    if let Some(path) = args.model.clone() {
        return score_with_model(&args, &path);
    }
    let train = read_data_at(&args.train)?;
    let test = read_data_at(&args.test)?;
    if train.schema() != test.schema() {
        return Err("train and test schemas differ".into());
    }
    let variant = variant_from(&args)?;
    let config = if args.snp {
        FracConfig::snp().with_seed(args.seed)
    } else {
        FracConfig::default().with_seed(args.seed)
    };
    eprintln!(
        "training {variant} on {} samples × {} features…",
        train.n_rows(),
        train.n_features()
    );
    let out = run_variant(&train, &test, &variant, &config);

    println!("sample\tns_score");
    for (r, ns) in out.ns.iter().enumerate() {
        println!("{r}\t{ns:.6}");
    }

    if args.top_features > 0 {
        for r in 0..test.n_rows() {
            let mut contribs: Vec<(usize, f64)> = out
                .contributions
                .feature_ids
                .iter()
                .zip(&out.contributions.values)
                .map(|(&f, col)| (f, col[r]))
                .collect();
            contribs.sort_by(|a, b| b.1.total_cmp(&a.1));
            let tops: Vec<String> = contribs
                .iter()
                .take(args.top_features)
                .map(|&(f, c)| format!("{}={c:.2}", test.schema().feature(f).name))
                .collect();
            eprintln!("sample {r} top features: {}", tops.join(" "));
        }
    }

    if let Some(path) = &args.labels {
        let labels = read_labels(path, out.ns.len())?;
        eprintln!("AUC = {:.4}", auc_from_scores(&out.ns, &labels));
    }

    eprintln!(
        "resources: {} models, {:.3} Gflop, peak ≈ {:.1} MiB, {:?}",
        out.resources.models_trained,
        out.resources.flops as f64 / 1e9,
        out.resources.peak_bytes() as f64 / (1024.0 * 1024.0),
        out.resources.wall
    );
    eprintln!("health: {}", out.resources.health.summary());
    Ok(())
}

/// Summarize a telemetry trace written by `train --telemetry`: per-stage
/// time table with wall-clock shares, counters, the solver-stats delta,
/// and the slowest targets.
fn inspect_telemetry(path: &std::path::Path, top: usize) -> Result<(), Error> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let report =
        TelemetryReport::parse_tsv(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    println!("wall\t{:.3}s", report.wall_ns as f64 / 1e9);
    for (k, v) in &report.notes {
        println!("note\t{k}\t{v}");
    }
    println!();
    println!("stage\tspans\ttotal_ms\tmax_ms\tpct_wall");
    let wall = report.wall_ns.max(1) as f64;
    for t in report.stage_totals() {
        println!(
            "{}\t{}\t{:.3}\t{:.3}\t{:.1}",
            t.stage,
            t.count,
            t.total_ns as f64 / 1e6,
            t.max_ns as f64 / 1e6,
            100.0 * t.total_ns as f64 / wall
        );
    }
    println!();
    println!("counter\tvalue");
    for c in Counter::ALL {
        println!("{}\t{}", c.as_str(), report.counter(c));
    }
    if let Some(name) = frac_dataset::kernels::describe_mask(report.counter(Counter::KernelTier)) {
        println!("kernel_tier_name\t{name}");
    }
    if let Some(names) =
        frac_core::describe_strategy_mask(report.counter(Counter::SolverStrategy))
    {
        println!("solver_strategy_names\t{names}");
    }
    println!(
        "solver\tsolves={} epochs={} visits={} dense_slots={} gram_solves={} gram_builds={} pack_reuses={}",
        report.solver.solves,
        report.solver.epochs,
        report.solver.visits,
        report.solver.dense_slots,
        report.solver.gram_solves,
        report.solver.gram_builds,
        report.solver.pack_reuses
    );
    let slow = report.slowest_targets(top);
    if !slow.is_empty() {
        println!();
        println!("target\ttotal_ms\t(top {} slowest)", slow.len());
        for (t, ns) in slow {
            println!("{t}\t{:.3}", ns as f64 / 1e6);
        }
    }
    Ok(())
}

fn entropy(path: &std::path::Path, top: usize) -> Result<(), Error> {
    let data = read_data_at(path)?;
    let entropies = frac_dataset::entropy::feature_entropies(&data);
    let order = frac_dataset::entropy::rank_by_entropy(&data);
    println!("rank\tfeature\tkind\tentropy_nats");
    for (rank, &j) in order.iter().take(top).enumerate() {
        let f = data.schema().feature(j);
        println!("{}\t{}\t{}\t{:.4}", rank + 1, f.name, f.kind, entropies[j]);
    }
    Ok(())
}

fn generate(name: &str, out: &std::path::Path, seed: u64) -> Result<(), Error> {
    let s = lookup(name).ok_or_else(|| {
        format!("unknown dataset `{name}`; valid names: {PAPER_DATASETS:?}")
    })?;
    std::fs::create_dir_all(out)
        .map_err(|e| format!("{}: {e}", out.display()))?;
    let ld = make_dataset(name, seed);

    // Paper protocol: train = ⅔ of normals; test = rest + anomalies.
    let normals = ld.normal_indices();
    let n_train = (normals.len() * 2) / 3;
    let train_rows = &normals[..n_train];
    let mut test_rows: Vec<usize> = normals[n_train..].to_vec();
    test_rows.extend(ld.anomaly_indices());

    let train_path = out.join(format!("{name}.train.tsv"));
    let test_path = out.join(format!("{name}.test.tsv"));
    let labels_path = out.join(format!("{name}.labels.txt"));
    write_tsv(&ld.data.select_rows(train_rows), &train_path)?;
    write_tsv(&ld.data.select_rows(&test_rows), &test_path)?;
    let labels: Vec<String> = test_rows
        .iter()
        .map(|&r| if ld.labels[r] { "1".into() } else { "0".into() })
        .collect();
    std::fs::write(&labels_path, labels.join("\n") + "\n")?;

    println!(
        "wrote {} ({} samples × {} features), {} ({} samples), {}",
        train_path.display(),
        n_train,
        s.n_features(),
        test_path.display(),
        test_rows.len(),
        labels_path.display()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_construction() {
        let mut a = ScoreArgs::default();
        for (name, expect_display) in [
            ("full", "full"),
            ("filter", "Random-filter(p=0.05)"),
            ("entropy", "Entropy-filter(p=0.05)"),
            ("jl", "jl(d=64,Gaussian)"),
        ] {
            a.variant = name.into();
            assert_eq!(variant_from(&a).unwrap().to_string(), expect_display);
        }
        a.variant = "bogus".into();
        assert!(variant_from(&a).is_err());
    }

    #[test]
    fn generate_then_score_roundtrip() {
        let dir = std::env::temp_dir().join("frac-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        generate("breast.basal", &dir, 5).unwrap();
        let train = read_tsv(dir.join("breast.basal.train.tsv")).unwrap();
        let test = read_tsv(dir.join("breast.basal.test.tsv")).unwrap();
        assert_eq!(train.n_features(), 320);
        assert_eq!(train.schema(), test.schema());
        let labels = std::fs::read_to_string(dir.join("breast.basal.labels.txt")).unwrap();
        assert_eq!(labels.split_whitespace().count(), test.n_rows());
        // Score with the cheapest variant to exercise the whole path.
        let args = ScoreArgs {
            train: dir.join("breast.basal.train.tsv"),
            test: dir.join("breast.basal.test.tsv"),
            variant: "filter".into(),
            p: 0.03,
            labels: Some(dir.join("breast.basal.labels.txt")),
            top_features: 2,
            ..ScoreArgs::default()
        };
        score(args).unwrap();
    }

    #[test]
    fn train_then_score_with_saved_model() {
        let dir = std::env::temp_dir().join("frac-cli-test-model");
        std::fs::create_dir_all(&dir).unwrap();
        generate("breast.basal", &dir, 5).unwrap();
        let model_path = dir.join("model.frac");
        train(TrainArgs {
            train: dir.join("breast.basal.train.tsv"),
            out: model_path.clone(),
            variant: "filter".into(),
            p: 0.04,
            ..TrainArgs::default()
        }, false)
        .unwrap();
        assert!(model_path.exists());
        let args = ScoreArgs {
            model: Some(model_path),
            test: dir.join("breast.basal.test.tsv"),
            labels: Some(dir.join("breast.basal.labels.txt")),
            ..ScoreArgs::default()
        };
        score(args).unwrap();
    }

    #[test]
    fn pack_train_score_matches_tsv_path() {
        let dir = std::env::temp_dir().join("frac-cli-test-fcb");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        generate("breast.basal", &dir, 5).unwrap();
        let tsv_path = dir.join("breast.basal.train.tsv");
        let fcb_path = dir.join("breast.basal.train.fcb");
        pack(&tsv_path, &fcb_path, 64).unwrap();
        info(&fcb_path).unwrap();
        // Packing is lossless: same fingerprint as the parsed TSV.
        let from_fcb = read_data_at(&fcb_path).unwrap();
        let from_tsv = read_data_at(&tsv_path).unwrap();
        assert_eq!(from_fcb.fingerprint(), from_tsv.fingerprint());
        // Train from each; the saved models must be byte-identical.
        for (data, out) in [(&tsv_path, "m-tsv.frac"), (&fcb_path, "m-fcb.frac")] {
            train(
                TrainArgs {
                    train: data.clone(),
                    out: dir.join(out),
                    variant: "filter".into(),
                    p: 0.04,
                    ..TrainArgs::default()
                },
                false,
            )
            .unwrap();
        }
        let m_tsv = std::fs::read(dir.join("m-tsv.frac")).unwrap();
        let m_fcb = std::fs::read(dir.join("m-fcb.frac")).unwrap();
        assert_eq!(m_tsv, m_fcb, "FCB-trained model must match TSV-trained byte for byte");
        // Packing an .fcb again is refused; info on a TSV is a clean error.
        assert!(pack(&fcb_path, &dir.join("x.fcb"), 64).is_err());
        assert!(info(&tsv_path).is_err());
    }

    #[test]
    fn train_rejects_unknown_variant() {
        let dir = std::env::temp_dir().join("frac-cli-test-model2");
        std::fs::create_dir_all(&dir).unwrap();
        generate("breast.basal", &dir, 5).unwrap();
        assert!(train(
            TrainArgs {
                train: dir.join("breast.basal.train.tsv"),
                out: dir.join("m.frac"),
                variant: "jl".into(),
                ..TrainArgs::default()
            },
            false
        )
        .is_err());
    }

    #[test]
    fn journaled_train_then_resume_and_deadline_run() {
        let dir = std::env::temp_dir().join("frac-cli-test-journal");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        generate("breast.basal", &dir, 5).unwrap();
        let base = TrainArgs {
            train: dir.join("breast.basal.train.tsv"),
            out: dir.join("m.frac"),
            variant: "filter".into(),
            p: 0.04,
            journals: vec![dir.join("run.frj")],
            ..TrainArgs::default()
        };
        // Journaled train from scratch, then resume of the complete journal:
        // every target restores, nothing refits, same saved model.
        train(base.clone(), false).unwrap();
        let first = std::fs::read_to_string(dir.join("m.frac")).unwrap();
        train(TrainArgs { out: dir.join("m2.frac"), ..base.clone() }, true).unwrap();
        let second = std::fs::read_to_string(dir.join("m2.frac")).unwrap();
        assert_eq!(first, second);
        // Resuming under a different seed must refuse the journal.
        let err = train(TrainArgs { seed: 7, ..base.clone() }, true).unwrap_err();
        assert!(err.to_string().contains("journal"), "{err}");
        // A resume without any journal on disk is an error, not a fresh run.
        let err = train(
            TrainArgs { journals: vec![dir.join("absent.frj")], ..base.clone() },
            true,
        )
        .unwrap_err();
        assert!(err.to_string().contains("no journal"), "{err}");
        // An (easily met) deadline run still exits cleanly and saves.
        train(
            TrainArgs {
                journals: Vec::new(),
                deadline: Some(std::time::Duration::from_secs(600)),
                out: dir.join("m3.frac"),
                ..base
            },
            false,
        )
        .unwrap();
        assert!(dir.join("m3.frac").exists());
    }

    /// Under `cargo test`, `current_exe()` is the test binary, which
    /// rejects worker argv and dies instantly — so with a zero retry
    /// budget the supervisor's reclaim path must finish every shard
    /// in-process and still produce the single-process model bit for bit.
    #[test]
    fn sharded_train_falls_back_to_in_process_reclaim() {
        let dir = std::env::temp_dir().join("frac-cli-test-shards");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        generate("breast.basal", &dir, 5).unwrap();
        let base = TrainArgs {
            train: dir.join("breast.basal.train.tsv"),
            out: dir.join("m.frac"),
            variant: "filter".into(),
            p: 0.04,
            ..TrainArgs::default()
        };
        train(
            TrainArgs {
                journals: vec![dir.join("run.frj")],
                shards: Some(2),
                shard_retries: Some(0),
                shard_backoff: Some(std::time::Duration::from_millis(1)),
                ..base.clone()
            },
            false,
        )
        .unwrap();
        let sharded = FracModel::load(dir.join("m.frac")).unwrap();
        assert_eq!(sharded.shard_restarts(), &[0, 0]);
        // Reference: plain single-process fit of the same spec.
        train(TrainArgs { out: dir.join("ref.frac"), ..base }, false).unwrap();
        let reference = FracModel::load(dir.join("ref.frac")).unwrap();
        assert!(reference.shard_restarts().is_empty());
        let data = read_tsv(dir.join("breast.basal.train.tsv")).unwrap();
        let (a, b) = (reference.score(&data), sharded.score(&data));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// `frac resume` pointed at the directory holding the shard journals
    /// reassembles the same model; a wrong-seed resume refuses each shard
    /// journal with the named-hash detail.
    #[test]
    fn resume_assembles_a_directory_of_shard_journals() {
        let dir = std::env::temp_dir().join("frac-cli-test-shard-resume");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        generate("breast.basal", &dir, 5).unwrap();
        let base = TrainArgs {
            train: dir.join("breast.basal.train.tsv"),
            out: dir.join("m.frac"),
            variant: "filter".into(),
            p: 0.04,
            journals: vec![dir.join("run.frj")],
            shards: Some(2),
            shard_retries: Some(0),
            shard_backoff: Some(std::time::Duration::from_millis(1)),
            ..TrainArgs::default()
        };
        train(base.clone(), false).unwrap();
        let first = std::fs::read_to_string(dir.join("m.frac")).unwrap();
        // Resume from the directory: both shard journals are complete, so
        // nothing refits and the saved model is byte-identical.
        train(
            TrainArgs {
                journals: vec![dir.clone()],
                shards: None,
                out: dir.join("m2.frac"),
                ..base.clone()
            },
            true,
        )
        .unwrap();
        let second = std::fs::read_to_string(dir.join("m2.frac")).unwrap();
        assert_eq!(first, second);
        // A foreign (wrong-seed) resume is refused per shard, naming the
        // config hash that differed.
        let err = train(
            TrainArgs {
                journals: vec![dir.clone()],
                shards: None,
                seed: 7,
                ..base
            },
            true,
        )
        .unwrap_err();
        assert!(err.to_string().contains("config hash"), "{err}");
    }

    #[test]
    fn shard_fault_specs_parse_and_reject() {
        let plan = parse_shard_faults("crashloop:1,abort-after:0:3").unwrap();
        assert!(plan.crashloop_shards.contains(&1));
        assert_eq!(plan.abort_after_records.get(&0), Some(&3));
        for bad in ["crashloop", "crashloop:x", "abort-after:1", "nonsense:2"] {
            assert!(parse_shard_faults(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn train_with_telemetry_writes_an_inspectable_trace() {
        let dir = std::env::temp_dir().join("frac-cli-test-telemetry");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        generate("breast.basal", &dir, 5).unwrap();
        let base = TrainArgs {
            train: dir.join("breast.basal.train.tsv"),
            out: dir.join("m.frac"),
            variant: "filter".into(),
            p: 0.04,
            ..TrainArgs::default()
        };
        let tpath = dir.join("trace.tsv");
        train(TrainArgs { telemetry: Some(tpath.clone()), ..base.clone() }, false).unwrap();
        let report =
            TelemetryReport::parse_tsv(&std::fs::read_to_string(&tpath).unwrap()).unwrap();
        assert!(!report.spans.is_empty());
        assert!(report.wall_ns > 0);
        assert!(report.notes.iter().any(|(k, _)| k == "health"));
        inspect_telemetry(&tpath, 3).unwrap();
        // A `.json` extension switches the output format.
        let jpath = dir.join("trace.json");
        train(
            TrainArgs { telemetry: Some(jpath.clone()), out: dir.join("m2.frac"), ..base },
            false,
        )
        .unwrap();
        assert!(std::fs::read_to_string(&jpath).unwrap().trim_start().starts_with('{'));
        // Inspecting something that is not a trace names the file.
        let err = inspect_telemetry(&jpath, 3).unwrap_err();
        assert!(err.to_string().contains("trace.json"), "{err}");
    }

    #[test]
    fn generate_rejects_unknown_dataset() {
        let dir = std::env::temp_dir().join("frac-cli-test-unknown");
        let err = generate("not.a.dataset", &dir, 1).unwrap_err();
        assert!(err.to_string().contains("unknown dataset"), "{err}");
    }

    #[test]
    fn missing_input_file_error_names_the_path() {
        let err = read_data_at(std::path::Path::new("/nonexistent/q.tsv")).unwrap_err();
        assert!(err.to_string().contains("/nonexistent/q.tsv"), "{err}");
    }

    #[test]
    fn label_mismatch_is_an_error_even_with_a_saved_model() {
        let dir = std::env::temp_dir().join("frac-cli-test-labellen");
        std::fs::create_dir_all(&dir).unwrap();
        generate("breast.basal", &dir, 5).unwrap();
        let model_path = dir.join("model.frac");
        train(TrainArgs {
            train: dir.join("breast.basal.train.tsv"),
            out: model_path.clone(),
            variant: "filter".into(),
            p: 0.04,
            ..TrainArgs::default()
        }, false)
        .unwrap();
        let short = dir.join("short.labels.txt");
        std::fs::write(&short, "1\n0\n").unwrap();
        let err = score(ScoreArgs {
            model: Some(model_path),
            test: dir.join("breast.basal.test.tsv"),
            labels: Some(short),
            ..ScoreArgs::default()
        })
        .unwrap_err();
        assert!(err.to_string().contains("labels for"), "{err}");
    }

    #[test]
    fn entropy_command_runs() {
        let dir = std::env::temp_dir().join("frac-cli-test-entropy");
        std::fs::create_dir_all(&dir).unwrap();
        generate("autism", &dir, 3).unwrap();
        entropy(&dir.join("autism.train.tsv"), 5).unwrap();
    }

    #[test]
    fn score_rejects_schema_mismatch() {
        let dir = std::env::temp_dir().join("frac-cli-test-mismatch");
        std::fs::create_dir_all(&dir).unwrap();
        generate("breast.basal", &dir, 5).unwrap();
        generate("autism", &dir, 5).unwrap();
        let args = ScoreArgs {
            train: dir.join("breast.basal.train.tsv"),
            test: dir.join("autism.test.tsv"),
            variant: "filter".into(),
            ..ScoreArgs::default()
        };
        assert!(score(args).is_err());
    }
}
