//! `frac` — command-line FRaC anomaly detection.
//!
//! ```text
//! frac score    --train ref.tsv --test new.tsv [options]   score a cohort
//! frac entropy  --data x.tsv [--top K]                     rank feature entropies
//! frac generate --dataset breast.basal --out DIR           write a paper surrogate
//! frac help                                                this text
//! ```
//!
//! See `frac help` for the full option list. Files use the TSV interchange
//! format documented in `frac_dataset::io`.

mod args;
mod commands;
mod signals;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::parse(&argv) {
        Ok(cmd) => match commands::run(cmd) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", args::USAGE);
            ExitCode::from(2)
        }
    }
}
