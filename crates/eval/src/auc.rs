//! ROC analysis (Spackman 1989 — the paper's ref. 9).
//!
//! FRaC's quality metric is the AUC of ranking test samples by NS score:
//! the probability that a uniformly chosen anomaly outranks a uniformly
//! chosen normal sample. We compute it with the Mann–Whitney rank statistic,
//! averaging ranks across ties (a tie counts ½).

/// AUC of `scores` against boolean `labels` (`true` = anomaly = should rank
/// higher). Returns 0.5 when either class is empty (no ranking information).
///
/// # Panics
/// Panics if lengths differ or any score is NaN.
pub fn auc_from_scores(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    assert!(
        scores.iter().all(|s| !s.is_nan()),
        "NaN scores cannot be ranked"
    );
    let n_pos = labels.iter().filter(|&&l| l).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    // Sort by score ascending, assign average ranks to ties, sum positive
    // ranks.
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).unwrap());
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0usize;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        // Items i..=j share the average of ranks i+1 ..= j+1.
        let avg_rank = (i + 1 + j + 1) as f64 / 2.0;
        for &k in &idx[i..=j] {
            if labels[k] {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    u / (n_pos as f64 * n_neg as f64)
}

/// ROC curve points `(false-positive rate, true-positive rate)`, from the
/// all-negative corner (0,0) to (1,1), thresholding at every distinct score
/// (descending).
///
/// # Panics
/// Panics if lengths differ, any score is NaN, or either class is empty.
pub fn roc_curve(scores: &[f64], labels: &[bool]) -> Vec<(f64, f64)> {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    assert!(scores.iter().all(|s| !s.is_nan()), "NaN scores");
    let n_pos = labels.iter().filter(|&&l| l).count();
    let n_neg = labels.len() - n_pos;
    assert!(n_pos > 0 && n_neg > 0, "ROC needs both classes");
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap());
    let mut curve = vec![(0.0, 0.0)];
    let (mut tp, mut fp) = (0usize, 0usize);
    let mut i = 0usize;
    while i < idx.len() {
        let threshold = scores[idx[i]];
        while i < idx.len() && scores[idx[i]] == threshold {
            if labels[idx[i]] {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        curve.push((fp as f64 / n_neg as f64, tp as f64 / n_pos as f64));
    }
    curve
}

/// Trapezoidal area under an ROC curve (cross-check for
/// [`auc_from_scores`]).
pub fn auc_from_curve(curve: &[(f64, f64)]) -> f64 {
    curve
        .windows(2)
        .map(|w| (w[1].0 - w[0].0) * (w[0].1 + w[1].1) / 2.0)
        .sum()
}

/// DeLong variance of the AUC estimate (DeLong, DeLong & Clarke-Pearson
/// 1988): `V = var(V10)/m + var(V01)/n`, where `V10[i]` is anomaly `i`'s
/// placement among normals and `V01[j]` normal `j`'s placement among
/// anomalies. Returns `None` when either class has fewer than two samples
/// (the variance is undefined).
pub fn auc_delong_variance(scores: &[f64], labels: &[bool]) -> Option<f64> {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    let pos: Vec<f64> = scores
        .iter()
        .zip(labels)
        .filter(|(_, &l)| l)
        .map(|(&s, _)| s)
        .collect();
    let neg: Vec<f64> = scores
        .iter()
        .zip(labels)
        .filter(|(_, &l)| !l)
        .map(|(&s, _)| s)
        .collect();
    let (m, n) = (pos.len(), neg.len());
    if m < 2 || n < 2 {
        return None;
    }
    let placement = |x: f64, others: &[f64]| -> f64 {
        others
            .iter()
            .map(|&o| {
                if x > o {
                    1.0
                } else if x == o {
                    0.5
                } else {
                    0.0
                }
            })
            .sum::<f64>()
            / others.len() as f64
    };
    let v10: Vec<f64> = pos.iter().map(|&p| placement(p, &neg)).collect();
    let v01: Vec<f64> = neg.iter().map(|&q| 1.0 - placement(q, &pos)).collect();
    let var = |v: &[f64]| -> f64 {
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (v.len() - 1) as f64
    };
    Some(var(&v10) / m as f64 + var(&v01) / n as f64)
}

/// Normal-approximation confidence interval for the AUC at the given
/// two-sided level (e.g. 0.95), clamped to `[0, 1]`; `None` when the
/// DeLong variance is undefined. Supported levels: 0.90, 0.95, 0.99.
///
/// # Panics
/// Panics on unsupported levels.
pub fn auc_confidence_interval(
    scores: &[f64],
    labels: &[bool],
    level: f64,
) -> Option<(f64, f64)> {
    let z = match (level * 100.0).round() as u32 {
        90 => 1.6448536269514722,
        95 => 1.959963984540054,
        99 => 2.5758293035489004,
        _ => panic!("unsupported confidence level {level}; use 0.90/0.95/0.99"),
    };
    let var = auc_delong_variance(scores, labels)?;
    let auc = auc_from_scores(scores, labels);
    let half = z * var.sqrt();
    Some(((auc - half).max(0.0), (auc + half).min(1.0)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_is_one() {
        let scores = [0.1, 0.2, 0.9, 0.8];
        let labels = [false, false, true, true];
        assert_eq!(auc_from_scores(&scores, &labels), 1.0);
    }

    #[test]
    fn inverted_separation_is_zero() {
        let scores = [0.9, 0.8, 0.1, 0.2];
        let labels = [false, false, true, true];
        assert_eq!(auc_from_scores(&scores, &labels), 0.0);
    }

    #[test]
    fn interleaved_is_half() {
        let scores = [1.0, 2.0, 3.0, 4.0];
        let labels = [false, true, false, true];
        assert_eq!(auc_from_scores(&scores, &labels), 0.75);
        let labels = [true, false, true, false];
        assert_eq!(auc_from_scores(&scores, &labels), 0.25);
    }

    #[test]
    fn all_tied_is_half() {
        let scores = [5.0; 6];
        let labels = [true, false, true, false, true, false];
        assert_eq!(auc_from_scores(&scores, &labels), 0.5);
    }

    #[test]
    fn partial_ties_average() {
        // One anomaly tied with one normal above another normal:
        // P(anom > norm) = ½·(1 + ½) = 0.75.
        let scores = [1.0, 2.0, 2.0];
        let labels = [false, false, true];
        assert_eq!(auc_from_scores(&scores, &labels), 0.75);
    }

    #[test]
    fn degenerate_classes_return_half() {
        assert_eq!(auc_from_scores(&[1.0, 2.0], &[true, true]), 0.5);
        assert_eq!(auc_from_scores(&[1.0, 2.0], &[false, false]), 0.5);
        assert_eq!(auc_from_scores(&[], &[]), 0.5);
    }

    #[test]
    fn curve_matches_rank_auc() {
        let scores = [0.3, 0.1, 0.9, 0.5, 0.4, 0.8, 0.2, 0.7];
        let labels = [false, false, true, true, false, true, false, true];
        let curve = roc_curve(&scores, &labels);
        assert_eq!(curve.first(), Some(&(0.0, 0.0)));
        assert_eq!(curve.last(), Some(&(1.0, 1.0)));
        let a1 = auc_from_scores(&scores, &labels);
        let a2 = auc_from_curve(&curve);
        assert!((a1 - a2).abs() < 1e-12);
    }

    #[test]
    fn curve_handles_tied_scores() {
        let scores = [1.0, 1.0, 0.0, 0.0];
        let labels = [true, false, true, false];
        let curve = roc_curve(&scores, &labels);
        // Ties produce diagonal segments; area must equal the rank AUC (0.5).
        assert!((auc_from_curve(&curve) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn monotone_transform_invariance() {
        let scores = [0.3, 0.1, 0.9, 0.5, 0.4];
        let labels = [false, false, true, true, false];
        let transformed: Vec<f64> = scores.iter().map(|&s: &f64| s.exp() * 7.0 + 3.0).collect();
        assert_eq!(
            auc_from_scores(&scores, &labels),
            auc_from_scores(&transformed, &labels)
        );
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_scores_rejected() {
        auc_from_scores(&[f64::NAN, 1.0], &[true, false]);
    }

    fn separated_sample(n_per_class: usize, gap: f64) -> (Vec<f64>, Vec<bool>) {
        let mut scores = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n_per_class {
            scores.push(i as f64 * 0.1);
            labels.push(false);
            scores.push(i as f64 * 0.1 + gap);
            labels.push(true);
        }
        (scores, labels)
    }

    #[test]
    fn delong_ci_contains_the_point_estimate() {
        let (scores, labels) = separated_sample(20, 0.35);
        let auc = auc_from_scores(&scores, &labels);
        let (lo, hi) = auc_confidence_interval(&scores, &labels, 0.95).unwrap();
        assert!(lo <= auc && auc <= hi, "[{lo}, {hi}] ∌ {auc}");
        assert!(lo >= 0.0 && hi <= 1.0);
    }

    #[test]
    fn delong_variance_shrinks_with_sample_size() {
        let (s_small, l_small) = separated_sample(10, 0.35);
        let (s_big, l_big) = separated_sample(200, 0.35);
        let v_small = auc_delong_variance(&s_small, &l_small).unwrap();
        let v_big = auc_delong_variance(&s_big, &l_big).unwrap();
        assert!(v_big < v_small / 4.0, "{v_big} vs {v_small}");
    }

    #[test]
    fn delong_perfect_separation_has_zero_variance() {
        let scores = [0.0, 0.1, 0.2, 1.0, 1.1, 1.2];
        let labels = [false, false, false, true, true, true];
        let v = auc_delong_variance(&scores, &labels).unwrap();
        assert_eq!(v, 0.0);
        let (lo, hi) = auc_confidence_interval(&scores, &labels, 0.95).unwrap();
        assert_eq!((lo, hi), (1.0, 1.0));
    }

    #[test]
    fn delong_needs_two_per_class() {
        assert!(auc_delong_variance(&[1.0, 0.0, 0.5], &[true, false, false]).is_none());
        assert!(auc_confidence_interval(&[1.0, 0.0], &[true, false], 0.95).is_none());
    }

    #[test]
    fn wider_level_gives_wider_interval() {
        let (scores, labels) = separated_sample(15, 0.25);
        let (lo90, hi90) = auc_confidence_interval(&scores, &labels, 0.90).unwrap();
        let (lo99, hi99) = auc_confidence_interval(&scores, &labels, 0.99).unwrap();
        assert!(lo99 <= lo90 && hi99 >= hi90);
    }

    #[test]
    #[should_panic(expected = "unsupported confidence level")]
    fn bad_level_rejected() {
        let (scores, labels) = separated_sample(10, 0.3);
        auc_confidence_interval(&scores, &labels, 0.5);
    }
}
