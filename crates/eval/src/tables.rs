//! Plain-text table rendering for the bench binaries.
//!
//! The bench harness prints the paper's tables as aligned monospace text —
//! one `Table` per paper table, with the same row/column structure so
//! paper-vs-measured comparison is a side-by-side read.

/// A simple aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the cell count differs from the header count.
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render with aligned columns (first column left-aligned, the rest
    /// right-aligned — the conventional layout for numeric tables).
    pub fn render(&self) -> String {
        let n_cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (c, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                if c == 0 {
                    line.push_str(&format!("{cell:<w$}"));
                } else {
                    line.push_str(&format!("{cell:>w$}"));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (n_cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Format a fraction with three decimals (the paper's Time%/Mem% style).
pub fn fmt_frac(x: f64) -> String {
    if x.is_nan() {
        "N/A".to_string()
    } else {
        format!("{x:.3}")
    }
}

/// Format an AUC ratio with its standard deviation: `1.02 (0.06)`.
pub fn fmt_auc_sd(auc: f64, sd: f64) -> String {
    format!("{auc:.2} ({sd:.2})")
}

/// Format bytes with a binary-prefix unit.
pub fn fmt_bytes(bytes: f64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes;
    let mut u = 0usize;
    while v >= 1024.0 && u + 1 < UNITS.len() {
        v /= 1024.0;
        u += 1;
    }
    format!("{v:.2} {}", UNITS[u])
}

/// Format a flop count with an SI prefix.
pub fn fmt_flops(flops: f64) -> String {
    const UNITS: [&str; 5] = ["", "K", "M", "G", "T"];
    let mut v = flops;
    let mut u = 0usize;
    while v >= 1000.0 && u + 1 < UNITS.len() {
        v /= 1000.0;
        u += 1;
    }
    format!("{v:.2} {}flop", UNITS[u])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("TABLE X", &["data set", "AUC", "Time %"]);
        t.add_row(vec!["breast.basal".into(), "0.73".into(), "0.278".into()]);
        t.add_row(vec!["bild".into(), "0.84".into(), "0.029".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "TABLE X");
        assert!(lines[1].starts_with("data set"));
        assert!(lines[2].chars().all(|c| c == '-'));
        // All data lines are equally long (aligned).
        assert_eq!(lines[3].len(), lines[4].len());
        assert_eq!(t.n_rows(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("T", &["a", "b"]);
        t.add_row(vec!["only one".into()]);
    }

    #[test]
    fn fraction_formatting() {
        assert_eq!(fmt_frac(0.0456), "0.046");
        assert_eq!(fmt_frac(f64::NAN), "N/A");
        assert_eq!(fmt_auc_sd(1.016, 0.034), "1.02 (0.03)");
    }

    #[test]
    fn unit_formatting() {
        assert_eq!(fmt_bytes(512.0), "512.00 B");
        assert_eq!(fmt_bytes(2048.0), "2.00 KiB");
        assert_eq!(fmt_bytes(3.5 * 1024.0 * 1024.0 * 1024.0), "3.50 GiB");
        assert_eq!(fmt_flops(1500.0), "1.50 Kflop");
        assert_eq!(fmt_flops(2.5e9), "2.50 Gflop");
    }
}
