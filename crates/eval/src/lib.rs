//! # frac-eval
//!
//! Evaluation harness reproducing the paper's experimental protocol:
//!
//! * [`auc`] — area under the ROC curve by the rank statistic (ties
//!   averaged), the paper's sole accuracy metric, plus the ROC curve itself.
//! * [`replicates`] — the §III-A protocol: per replicate, train on a random
//!   two-thirds of the normal samples, test on the remaining normals plus
//!   all anomalies; report mean/SD AUC over (typically five) replicates.
//! * [`experiments`] — the per-table method roster (random-filter ensemble,
//!   JL, entropy filter, Diverse, Diverse ensemble), per-data-set model
//!   configuration, scaled JL dimensions, and the autism→schizophrenia
//!   full-run extrapolation of Table II.
//! * [`tables`] — plain-text table rendering used by the bench binaries.

#![warn(missing_docs)]

pub mod auc;
pub mod experiments;
pub mod replicates;
pub mod tables;

pub use auc::{auc_confidence_interval, auc_delong_variance, auc_from_scores, roc_curve};
pub use experiments::{
    config_for, extrapolate_full_run, jl_dim_for, paper_method_roster, MethodSpec,
};
pub use replicates::{aggregate, run_replicates, Aggregate, ReplicateResult};
pub use tables::Table;
