//! Experiment roster and per-data-set settings (paper §III-B).
//!
//! * Expression data sets: linear SVMs, "exactly as in the original FRaC
//!   paper". SNP data sets: decision trees.
//! * Filtering at p = 0.05, ensembles of 10 (both random filtering and
//!   diverse), Diverse at p = ½ (p = 1/20 inside ensembles), JL at 1024
//!   projected dimensions (2048/4096 extras on schizophrenia).
//! * JL dimensions are rescaled to our surrogate sizes preserving the d/D
//!   ratio (documented in EXPERIMENTS.md).
//! * The schizophrenia full run is **extrapolated** from the autism run,
//!   exactly as the paper's Table II does.

use frac_core::{FeatureSelector, FracConfig, ResourceReport, Variant};
use frac_projection::JlMatrixKind;
use frac_synth::registry::{DatasetSpec, PaperModel};

/// A named method — one column group of Tables III/IV.
#[derive(Debug, Clone)]
pub struct MethodSpec {
    /// Display name matching the paper's tables.
    pub name: &'static str,
    /// The variant to run.
    pub variant: Variant,
}

/// The model configuration the paper used for this data set (§III-B):
/// linear SVMs for expression, decision trees for SNPs.
pub fn config_for(spec: &DatasetSpec) -> FracConfig {
    match spec.model {
        PaperModel::LinearSvm => FracConfig::expression(),
        PaperModel::DecisionTree => FracConfig::snp(),
    }
}

/// Scale the paper's projected dimension to our surrogate size, preserving
/// the ratio `d / D_paper` (minimum 8, rounded up to a multiple of 8).
pub fn jl_dim_for(spec: &DatasetSpec, paper_dim: usize) -> usize {
    let ratio = paper_dim as f64 / spec.paper_features as f64;
    let scaled = (ratio * spec.n_features() as f64).ceil() as usize;
    scaled.div_ceil(8).max(1) * 8
}

/// The five scalable methods of Tables III and IV, configured exactly as in
/// §III-B: random-filter ensemble (10 × p=.05, median), JL pre-projection,
/// entropy filtering (p=.05), Diverse (p=½), Diverse ensemble (10 × p=1/20).
pub fn paper_method_roster(spec: &DatasetSpec) -> Vec<MethodSpec> {
    vec![
        MethodSpec {
            name: "Ensemble of Random Filtering",
            variant: Variant::Ensemble {
                base: Box::new(Variant::FullFilter {
                    selector: FeatureSelector::Random,
                    p: 0.05,
                }),
                members: 10,
            },
        },
        MethodSpec {
            name: "JL",
            variant: Variant::JlProject {
                dim: jl_dim_for(spec, 1024),
                kind: JlMatrixKind::Gaussian,
            },
        },
        MethodSpec {
            name: "Entropy Filtering",
            variant: Variant::FullFilter { selector: FeatureSelector::Entropy, p: 0.05 },
        },
        MethodSpec {
            name: "Diverse",
            variant: Variant::Diverse { p: 0.5, models_per_feature: 1 },
        },
        MethodSpec {
            name: "Diverse Ensemble",
            variant: Variant::Ensemble {
                base: Box::new(Variant::Diverse { p: 1.0 / 20.0, models_per_feature: 1 }),
                members: 10,
            },
        },
    ]
}

/// An extrapolated full-run cost (the italic schizophrenia row of Table II).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtrapolatedCost {
    /// Estimated flops of the (never executed) full run.
    pub flops: f64,
    /// Estimated peak bytes.
    pub peak_bytes: f64,
}

/// Extrapolate a full-FRaC run's cost from a measured smaller run, exactly
/// as the paper extrapolated schizophrenia from autism:
///
/// * training work scales as `f² · n` (f models, each over ~f inputs, n
///   samples);
/// * peak memory is dominated by retained model state, scaling as `f²`.
///
/// `measured` is the smaller data set's report; `(f, n)` pairs give the
/// feature/training-sample counts of the measured and target data sets.
pub fn extrapolate_full_run(
    measured: &ResourceReport,
    measured_fn: (usize, usize),
    target_fn: (usize, usize),
) -> ExtrapolatedCost {
    let (f0, n0) = (measured_fn.0 as f64, measured_fn.1 as f64);
    let (f1, n1) = (target_fn.0 as f64, target_fn.1 as f64);
    assert!(f0 > 0.0 && n0 > 0.0, "measured sizes must be positive");
    let f_ratio = f1 / f0;
    ExtrapolatedCost {
        flops: measured.flops as f64 * f_ratio * f_ratio * (n1 / n0),
        peak_bytes: measured.peak_bytes() as f64 * f_ratio * f_ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frac_synth::registry::spec;

    #[test]
    fn roster_matches_paper_settings() {
        let roster = paper_method_roster(&spec("biomarkers"));
        assert_eq!(roster.len(), 5);
        assert_eq!(roster[0].name, "Ensemble of Random Filtering");
        match &roster[0].variant {
            Variant::Ensemble { base, members } => {
                assert_eq!(*members, 10);
                match **base {
                    Variant::FullFilter { selector, p } => {
                        assert_eq!(selector, FeatureSelector::Random);
                        assert!((p - 0.05).abs() < 1e-12);
                    }
                    _ => panic!("wrong base"),
                }
            }
            _ => panic!("wrong variant"),
        }
        match &roster[3].variant {
            Variant::Diverse { p, models_per_feature } => {
                assert!((p - 0.5).abs() < 1e-12);
                assert_eq!(*models_per_feature, 1);
            }
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn jl_dims_preserve_paper_ratio() {
        let s = spec("biomarkers");
        let d = jl_dim_for(&s, 1024);
        // 1024/19739 ≈ 5.2% of 600 ≈ 31 → rounded to 32.
        assert_eq!(d, 32);
        let ratio_ours = d as f64 / s.n_features() as f64;
        let ratio_paper = 1024.0 / s.paper_features as f64;
        assert!((ratio_ours - ratio_paper).abs() < 0.02);
    }

    #[test]
    fn jl_dim_sweep_doubles() {
        let s = spec("schizophrenia");
        let d1 = jl_dim_for(&s, 1024);
        let d2 = jl_dim_for(&s, 2048);
        let d4 = jl_dim_for(&s, 4096);
        assert!(d1 < d2 && d2 < d4, "{d1} {d2} {d4}");
        assert!(d1 >= 8);
    }

    #[test]
    fn config_families_match_models() {
        use frac_core::config::{CatModel, RealModel};
        let expr = config_for(&spec("bild"));
        assert!(matches!(expr.real_model, RealModel::Svr(_)));
        let snp = config_for(&spec("autism"));
        assert!(matches!(snp.real_model, RealModel::Tree(_)));
        assert!(matches!(snp.cat_model, CatModel::Tree(_)));
    }

    #[test]
    fn extrapolation_scaling_laws() {
        let measured = ResourceReport {
            flops: 1_000_000,
            model_bytes: 1_000_000,
            models_trained: 10,
            ..ResourceReport::default()
        };
        // 10× features, same samples → 100× flops and bytes.
        let e = extrapolate_full_run(&measured, (100, 50), (1000, 50));
        assert!((e.flops - 1e8).abs() < 1.0);
        assert!((e.peak_bytes - 1e8).abs() < 1.0);
        // 2× samples at same features → 2× flops, same bytes.
        let e = extrapolate_full_run(&measured, (100, 50), (100, 100));
        assert!((e.flops - 2e6).abs() < 1.0);
        assert!((e.peak_bytes - 1e6).abs() < 1.0);
    }

    #[test]
    fn extrapolated_schizophrenia_dwarfs_autism() {
        // Mirrors the paper's Table II: the extrapolated run is thousands of
        // times the autism run.
        let autism = spec("autism");
        let schizo = spec("schizophrenia");
        let measured = ResourceReport { flops: 1_000, model_bytes: 1_000, ..Default::default() };
        let e = extrapolate_full_run(
            &measured,
            (autism.n_features(), 105),
            (schizo.n_features(), 270),
        );
        assert!(e.flops / 1_000.0 > 100.0);
    }
}
