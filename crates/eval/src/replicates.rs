//! The paper's replicate protocol (§III-A).
//!
//! "Each replicate consists of a training set containing a randomly selected
//! two-thirds of the normal samples. The test set consists of the remaining
//! normal samples as well as all non-normal samples." Five replicates per
//! data set; Tables II–IV report mean and standard deviation over them.

use crate::auc::auc_from_scores;
use frac_core::{run_variant, FracConfig, ResourceReport, Variant};
use frac_dataset::split::{derive_seed, replicate_split};
use frac_dataset::stats;
use frac_synth::LabeledDataset;

/// The outcome of one replicate.
#[derive(Debug)]
pub struct ReplicateResult {
    /// Replicate index.
    pub replicate: usize,
    /// AUC of NS against the test labels.
    pub auc: f64,
    /// NS score per test row.
    pub ns: Vec<f64>,
    /// Test labels aligned with `ns`.
    pub labels: Vec<bool>,
    /// Resource accounting for the run.
    pub resources: ResourceReport,
}

/// Run `n_replicates` replicates of `variant` on a labeled data set.
///
/// Replicate `r` trains on two-thirds of the normal rows chosen by
/// `derive_seed(split_seed, r)` and uses a per-replicate algorithm seed, so
/// both the split and the variant's internal randomness vary across
/// replicates exactly as in the paper, while the whole experiment stays
/// reproducible.
pub fn run_replicates(
    dataset: &LabeledDataset,
    variant: &Variant,
    config: &FracConfig,
    n_replicates: usize,
    split_seed: u64,
) -> Vec<ReplicateResult> {
    assert!(n_replicates >= 1, "need at least one replicate");
    let normal_rows = dataset.normal_indices();
    let anomaly_rows = dataset.anomaly_indices();
    assert!(
        normal_rows.len() >= 3,
        "replicate protocol needs at least 3 normal samples"
    );
    (0..n_replicates)
        .map(|r| {
            let split = replicate_split(normal_rows.len(), r, split_seed);
            let train_rows: Vec<usize> = split.train.iter().map(|&i| normal_rows[i]).collect();
            let mut test_rows: Vec<usize> = split.test.iter().map(|&i| normal_rows[i]).collect();
            test_rows.extend(anomaly_rows.iter().copied());

            let train = dataset.data.select_rows(&train_rows);
            let test = dataset.data.select_rows(&test_rows);
            let labels: Vec<bool> = test_rows.iter().map(|&i| dataset.labels[i]).collect();

            let cfg = config.with_seed(derive_seed(config.seed, r as u64));
            let out = run_variant(&train, &test, variant, &cfg);
            let auc = auc_from_scores(&out.ns, &labels);
            ReplicateResult {
                replicate: r,
                auc,
                ns: out.ns,
                labels,
                resources: out.resources,
            }
        })
        .collect()
}

/// Aggregated replicate statistics — one row of the paper's tables.
#[derive(Debug, Clone, Copy)]
pub struct Aggregate {
    /// Mean AUC over replicates.
    pub mean_auc: f64,
    /// AUC standard deviation (0 for a single replicate).
    pub sd_auc: f64,
    /// Mean flops per replicate.
    pub mean_flops: f64,
    /// Mean peak bytes per replicate.
    pub mean_peak_bytes: f64,
    /// Mean wall-clock seconds per replicate.
    pub mean_wall_s: f64,
    /// Number of replicates aggregated.
    pub n: usize,
}

impl Aggregate {
    /// Ratio of this aggregate's mean AUC to a baseline's (the paper's
    /// "AUC %" columns in Tables III–V).
    pub fn auc_fraction_of(&self, baseline: &Aggregate) -> f64 {
        self.mean_auc / baseline.mean_auc
    }

    /// Ratio of mean flops to a baseline's ("Time %").
    pub fn time_fraction_of(&self, baseline: &Aggregate) -> f64 {
        self.mean_flops / baseline.mean_flops
    }

    /// Ratio of mean peak bytes to a baseline's ("Mem %").
    pub fn mem_fraction_of(&self, baseline: &Aggregate) -> f64 {
        self.mean_peak_bytes / baseline.mean_peak_bytes
    }
}

/// Aggregate replicate results into table-row statistics.
///
/// # Panics
/// Panics on an empty slice.
pub fn aggregate(results: &[ReplicateResult]) -> Aggregate {
    assert!(!results.is_empty(), "cannot aggregate zero replicates");
    let aucs: Vec<f64> = results.iter().map(|r| r.auc).collect();
    let flops: Vec<f64> = results.iter().map(|r| r.resources.flops as f64).collect();
    let peaks: Vec<f64> = results
        .iter()
        .map(|r| r.resources.peak_bytes() as f64)
        .collect();
    let walls: Vec<f64> = results
        .iter()
        .map(|r| r.resources.wall.as_secs_f64())
        .collect();
    Aggregate {
        mean_auc: stats::mean(&aucs).unwrap(),
        sd_auc: stats::std_dev(&aucs).unwrap_or(0.0),
        mean_flops: stats::mean(&flops).unwrap(),
        mean_peak_bytes: stats::mean(&peaks).unwrap(),
        mean_wall_s: stats::mean(&walls).unwrap(),
        n: results.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frac_synth::{ExpressionConfig, ExpressionGenerator};

    fn toy_dataset() -> LabeledDataset {
        let g = ExpressionGenerator::new(ExpressionConfig {
            n_features: 20,
            n_modules: 4,
            relevant_fraction: 0.9,
            anomaly_modules: 2,
            anomaly_shift: 3.0,
            noise_sd: 0.5,
            structure_seed: 13,
            ..ExpressionConfig::default()
        });
        let (data, labels) = g.generate(24, 8, 5);
        LabeledDataset { name: "toy".into(), data, labels }
    }

    #[test]
    fn replicates_follow_the_protocol() {
        let ld = toy_dataset();
        let results = run_replicates(&ld, &Variant::Full, &FracConfig::default(), 3, 42);
        assert_eq!(results.len(), 3);
        for r in &results {
            // Test set = 24 − 16 remaining normals + 8 anomalies.
            assert_eq!(r.ns.len(), 16);
            assert_eq!(r.labels.iter().filter(|&&l| l).count(), 8);
            assert!(r.auc >= 0.0 && r.auc <= 1.0);
            assert!(r.resources.models_trained > 0);
        }
    }

    #[test]
    fn strong_signal_yields_high_auc() {
        let ld = toy_dataset();
        let results = run_replicates(&ld, &Variant::Full, &FracConfig::default(), 3, 1);
        let agg = aggregate(&results);
        assert!(agg.mean_auc > 0.7, "mean AUC {}", agg.mean_auc);
        assert_eq!(agg.n, 3);
        assert!(agg.mean_flops > 0.0);
    }

    #[test]
    fn replicates_are_reproducible_but_distinct() {
        let ld = toy_dataset();
        let cfg = FracConfig::default();
        let a = run_replicates(&ld, &Variant::Full, &cfg, 2, 9);
        let b = run_replicates(&ld, &Variant::Full, &cfg, 2, 9);
        assert_eq!(a[0].ns, b[0].ns);
        assert_eq!(a[1].ns, b[1].ns);
        // Different replicates use different splits.
        assert_ne!(a[0].ns, a[1].ns);
    }

    #[test]
    fn aggregate_statistics() {
        let ld = toy_dataset();
        let results = run_replicates(&ld, &Variant::Full, &FracConfig::default(), 4, 3);
        let agg = aggregate(&results);
        let manual_mean: f64 = results.iter().map(|r| r.auc).sum::<f64>() / 4.0;
        assert!((agg.mean_auc - manual_mean).abs() < 1e-12);
        assert!(agg.sd_auc >= 0.0);
    }

    #[test]
    fn fractions_between_aggregates() {
        let base = Aggregate {
            mean_auc: 0.8,
            sd_auc: 0.0,
            mean_flops: 1000.0,
            mean_peak_bytes: 4000.0,
            mean_wall_s: 1.0,
            n: 5,
        };
        let reduced = Aggregate { mean_auc: 0.76, mean_flops: 50.0, mean_peak_bytes: 40.0, ..base };
        assert!((reduced.auc_fraction_of(&base) - 0.95).abs() < 1e-12);
        assert!((reduced.time_fraction_of(&base) - 0.05).abs() < 1e-12);
        assert!((reduced.mem_fraction_of(&base) - 0.01).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero replicates")]
    fn aggregate_rejects_empty() {
        aggregate(&[]);
    }
}
