//! The Fig. 2 encoding: mixed data → all-real concatenation.
//!
//! Categorical k-ary features become k-dimensional indicator vectors;
//! real features pass through; the blocks are concatenated in feature
//! order. Missing values map to 0 (real) / an all-zero indicator block
//! (categorical), consistently with the design-matrix encoder.

use frac_dataset::{Column, Dataset, DesignMatrix, FeatureKind};

/// One-hot encode a data set into a dense row-major matrix of width
/// [`frac_dataset::Schema::one_hot_width`].
pub fn one_hot_encode(data: &Dataset) -> DesignMatrix {
    let n = data.n_rows();
    let width = data.schema().one_hot_width();
    let mut values = vec![0.0f64; n * width];
    let mut base = 0usize;
    for j in 0..data.n_features() {
        match data.column(j) {
            Column::Real(v) => {
                for (r, &x) in v.iter().enumerate() {
                    values[r * width + base] = if x.is_nan() { 0.0 } else { x };
                }
                base += 1;
            }
            Column::Categorical { arity, codes } => {
                for (r, &c) in codes.iter().enumerate() {
                    if c != frac_dataset::dataset::MISSING_CODE {
                        values[r * width + base + c as usize] = 1.0;
                    }
                }
                base += *arity as usize;
            }
        }
    }
    debug_assert_eq!(base, width);
    DesignMatrix::from_raw(n, width, values)
}

/// Column offsets of each feature's block within the one-hot concatenation.
/// `offsets[j]` is the first encoded column of feature `j`; a trailing entry
/// equals the total width.
pub fn one_hot_offsets(data: &Dataset) -> Vec<usize> {
    let mut offsets = Vec::with_capacity(data.n_features() + 1);
    let mut base = 0usize;
    for j in 0..data.n_features() {
        offsets.push(base);
        base += match data.schema().kind(j) {
            FeatureKind::Real => 1,
            FeatureKind::Categorical { arity } => arity as usize,
        };
    }
    offsets.push(base);
    offsets
}

#[cfg(test)]
mod tests {
    use super::*;
    use frac_dataset::dataset::{DatasetBuilder, MISSING_CODE};

    /// The worked example of Fig. 2: data (3.4, 0, −2, 0.6, cat3=1, cat4=2)
    /// encodes to (3.4, 0, −2, 0.6, 0,1,0, 0,0,1,0).
    #[test]
    fn fig2_worked_example() {
        let d = DatasetBuilder::new()
            .real("r1", vec![3.4])
            .real("r2", vec![0.0])
            .real("r3", vec![-2.0])
            .real("r4", vec![0.6])
            .categorical("c3", 3, vec![1])
            .categorical("c4", 4, vec![2])
            .build();
        let m = one_hot_encode(&d);
        assert_eq!(m.n_cols(), 11);
        assert_eq!(
            m.row(0),
            &[3.4, 0.0, -2.0, 0.6, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0, 0.0]
        );
    }

    #[test]
    fn missing_values_become_zero_blocks() {
        let d = DatasetBuilder::new()
            .real("r", vec![f64::NAN])
            .categorical("c", 3, vec![MISSING_CODE])
            .build();
        let m = one_hot_encode(&d);
        assert_eq!(m.row(0), &[0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn offsets_mark_block_starts() {
        let d = DatasetBuilder::new()
            .real("r", vec![1.0])
            .categorical("c3", 3, vec![0])
            .real("r2", vec![2.0])
            .categorical("c2", 2, vec![1])
            .build();
        assert_eq!(one_hot_offsets(&d), vec![0, 1, 4, 5, 7]);
    }

    #[test]
    fn all_real_dataset_is_identity_encoding() {
        let d = Dataset::from_real_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let m = one_hot_encode(&d);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn indicator_rows_sum_to_one_per_categorical_feature() {
        let d = DatasetBuilder::new()
            .categorical("a", 3, vec![0, 1, 2, 2])
            .categorical("b", 2, vec![1, 0, 1, 0])
            .build();
        let m = one_hot_encode(&d);
        for r in 0..4 {
            let row = m.row(r);
            assert_eq!(row[..3].iter().sum::<f64>(), 1.0);
            assert_eq!(row[3..].iter().sum::<f64>(), 1.0);
        }
    }
}
