//! The Johnson–Lindenstrauss dimension bounds of paper §I-A-2.
//!
//! Point-set form: for `n` points, squared distances are preserved within
//! `[1−ε, 1+ε]` for **every** pair when
//!
//! ```text
//!   k ≥ 4 ln(n) / (ε²/2 − ε³/3)
//! ```
//!
//! Distributional form: **any one** pair is preserved with probability
//! `1 − δ` when
//!
//! ```text
//!   k ≥ ln(2/δ) / (ε²/2 − ε³/3)
//! ```
//!
//! Note — as the paper stresses — neither bound depends on the *input*
//! dimension, only on the number of points (or on δ alone).

/// The denominator `ε²/2 − ε³/3` common to both bounds.
///
/// # Panics
/// Panics unless `0 < ε < 1` (outside that range the bound is vacuous or the
/// denominator non-positive).
fn eps_denom(eps: f64) -> f64 {
    assert!(eps > 0.0 && eps < 1.0, "ε must be in (0, 1), got {eps}");
    eps * eps / 2.0 - eps * eps * eps / 3.0
}

/// Minimum projected dimension preserving all pairwise squared distances of
/// `n` points within `1 ± ε` (point-set JL bound).
///
/// # Panics
/// Panics if `n < 2` or ε is outside `(0, 1)`.
pub fn jl_dim_point_set(n: usize, eps: f64) -> usize {
    assert!(n >= 2, "need at least two points, got {n}");
    (4.0 * (n as f64).ln() / eps_denom(eps)).ceil() as usize
}

/// Minimum projected dimension preserving one pair's squared distance within
/// `1 ± ε` with probability `1 − δ` (distributional JL bound).
///
/// # Panics
/// Panics unless `0 < δ < 1` and `0 < ε < 1`.
pub fn jl_dim_distributional(delta: f64, eps: f64) -> usize {
    assert!(delta > 0.0 && delta < 1.0, "δ must be in (0, 1), got {delta}");
    ((2.0 / delta).ln() / eps_denom(eps)).ceil() as usize
}

/// The distortion ε actually guaranteed (distributional form) by a projected
/// dimension `k` at failure probability `δ`, solved by bisection.
///
/// Returns `None` when even ε → 1 cannot satisfy the bound (k too small).
///
/// The paper reports (δ = 0.05, ε = 0.057) for k = 1024; by the formula as
/// printed, k = 1024 at δ = 0.05 actually yields ε ≈ 0.087 — see
/// EXPERIMENTS.md for the discrepancy note.
pub fn achieved_epsilon(k: usize, delta: f64) -> Option<f64> {
    assert!(delta > 0.0 && delta < 1.0, "δ must be in (0, 1), got {delta}");
    assert!(k >= 1, "k must be positive");
    let target = (2.0 / delta).ln() / k as f64; // need eps_denom(eps) ≥ target
    let denom_near_one = eps_denom(1.0 - 1e-12);
    if target > denom_near_one {
        return None;
    }
    // eps_denom is strictly increasing on (0, 1): derivative ε − ε² > 0.
    let (mut lo, mut hi) = (1e-12, 1.0 - 1e-12);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if eps_denom(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_set_bound_monotone_in_n_and_eps() {
        assert!(jl_dim_point_set(1000, 0.1) > jl_dim_point_set(100, 0.1));
        assert!(jl_dim_point_set(100, 0.05) > jl_dim_point_set(100, 0.2));
    }

    #[test]
    fn point_set_bound_known_value() {
        // n = 100, ε = 0.1: 4·ln(100)/(0.005 − 0.000333…) = 3946.00…
        let k = jl_dim_point_set(100, 0.1);
        let expect = 4.0 * 100f64.ln() / (0.005 - 0.001 / 3.0);
        assert_eq!(k, expect.ceil() as usize);
        assert!((3900..4000).contains(&k), "k = {k}");
    }

    #[test]
    fn distributional_bound_independent_of_n() {
        // The probabilistic form is "just a statement about the fraction of
        // point pairs" — there is no n anywhere.
        let k = jl_dim_distributional(0.05, 0.1);
        let expect = (2.0f64 / 0.05).ln() / (0.005 - 0.001 / 3.0);
        assert_eq!(k, expect.ceil() as usize);
    }

    #[test]
    fn achieved_epsilon_inverts_the_bound() {
        for &k in &[256usize, 1024, 4096] {
            let eps = achieved_epsilon(k, 0.05).unwrap();
            // Plugging ε back must require ≤ k dimensions…
            assert!(jl_dim_distributional(0.05, eps) <= k);
            // …and a slightly smaller ε must require > k.
            assert!(jl_dim_distributional(0.05, eps * 0.99) > k);
        }
    }

    #[test]
    fn paper_parameters_documented_discrepancy() {
        // k = 1024, δ = 0.05 gives ε ≈ 0.087 by the printed formula (the
        // paper states 0.057; we record the as-printed-formula value).
        let eps = achieved_epsilon(1024, 0.05).unwrap();
        assert!((eps - 0.087).abs() < 0.002, "ε = {eps}");
    }

    #[test]
    fn tiny_k_returns_none() {
        assert_eq!(achieved_epsilon(1, 0.0001), None);
    }

    #[test]
    fn larger_k_gives_smaller_epsilon() {
        let e1 = achieved_epsilon(1024, 0.05).unwrap();
        let e2 = achieved_epsilon(2048, 0.05).unwrap();
        let e3 = achieved_epsilon(4096, 0.05).unwrap();
        assert!(e1 > e2 && e2 > e3);
    }

    #[test]
    #[should_panic(expected = "ε must be in (0, 1)")]
    fn rejects_bad_epsilon() {
        jl_dim_point_set(10, 1.5);
    }

    #[test]
    #[should_panic(expected = "δ must be in (0, 1)")]
    fn rejects_bad_delta() {
        jl_dim_distributional(0.0, 0.1);
    }
}
