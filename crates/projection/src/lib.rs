//! # frac-projection
//!
//! Johnson–Lindenstrauss pre-projection for FRaC (paper §I-A-2, §II-D).
//!
//! The pre-projection variant converts a mixed data set to an entirely real
//! one (categorical features → 1-hot indicator blocks, Fig. 2), concatenates,
//! and multiplies by a random `k × D` matrix, then runs ordinary FRaC in the
//! projected space. Because the transform is drawn independently of the data
//! it "doesn't risk preferentially destroying the very signal FRaC detects,
//! as might a data-dependent transform such as PCA."
//!
//! * [`dims`] — both JL dimension bounds from the paper (point-set ε and
//!   distributional ε–δ forms) plus the inverse solve (achieved ε for a
//!   given k).
//! * [`jl`] — the transform itself, with Gaussian, Rademacher (±1, the
//!   paper's Uniform(−1,1)-style dense option) and Achlioptas sparse
//!   (database-friendly, ref. 11) entry distributions. Matrix columns are
//!   regenerated deterministically from the seed, so projecting the test set
//!   uses bit-identical geometry to the training set without storing the
//!   `k × D` matrix.
//! * [`onehot`] — the Fig. 2 encoding of a mixed [`frac_dataset::Dataset`]
//!   into its real concatenation.

#![warn(missing_docs)]

pub mod dims;
pub mod jl;
pub mod onehot;

pub use dims::{achieved_epsilon, jl_dim_distributional, jl_dim_point_set};
pub use jl::{JlMatrixKind, JlTransform};
pub use onehot::one_hot_encode;
