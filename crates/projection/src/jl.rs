//! The Johnson–Lindenstrauss random projection.
//!
//! A `k × D` random matrix `R` with i.i.d. zero-mean unit-variance entries,
//! scaled by `1/√k`, approximately preserves pairwise distances (and, per
//! Kabán 2015 — the paper's ref. 12 — dot products). The paper draws entries
//! "Gaussian distributed or Uniform(−1,1) distributed"; we provide Gaussian,
//! Rademacher (±1) and the Achlioptas sparse distribution of ref. 11
//! (√3 · {+1 w.p. ⅙, 0 w.p. ⅔, −1 w.p. ⅙}), all unit-variance.
//!
//! **Columns are regenerated from the seed on demand** (`R[:, j]` is a pure
//! function of `(seed, j)`), so train and test project through bit-identical
//! geometry without ever storing the full matrix — the trick that lets the
//! schizophrenia-scale experiment fit in memory, and the reason the paper's
//! Table III JL memory fractions are tiny.

use frac_dataset::dataset::MISSING_CODE;
use frac_dataset::split::derive_seed;
use frac_dataset::{Column, Dataset, DesignMatrix, Schema};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Entry distribution of the projection matrix. All variants have zero mean
/// and unit variance, so `‖Rx‖²/k` is an unbiased estimate of `‖x‖²`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JlMatrixKind {
    /// Standard normal entries (the classical construction).
    Gaussian,
    /// ±1 entries with equal probability ("binary coins").
    Rademacher,
    /// Achlioptas's database-friendly sparse construction:
    /// √3 · {+1 w.p. ⅙, 0 w.p. ⅔, −1 w.p. ⅙}. Two-thirds of entries vanish,
    /// tripling projection throughput at identical guarantees.
    AchlioptasSparse,
}

/// A seeded JL transform from `D`-dimensional inputs to `k` dimensions.
#[derive(Debug, Clone, Copy)]
pub struct JlTransform {
    out_dim: usize,
    kind: JlMatrixKind,
    seed: u64,
}

impl JlTransform {
    /// Create a transform to `out_dim` components.
    ///
    /// # Panics
    /// Panics if `out_dim == 0`.
    pub fn new(out_dim: usize, kind: JlMatrixKind, seed: u64) -> Self {
        assert!(out_dim > 0, "projected dimension must be positive");
        JlTransform { out_dim, kind, seed }
    }

    /// Projected dimension `k`.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Entry distribution in use.
    pub fn kind(&self) -> JlMatrixKind {
        self.kind
    }

    /// Column `j` of the (scaled) projection matrix: `R[:, j] / √k`,
    /// regenerated deterministically from `(seed, j)`.
    pub fn column(&self, j: usize) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(derive_seed(self.seed, j as u64));
        let scale = 1.0 / (self.out_dim as f64).sqrt();
        let mut col = Vec::with_capacity(self.out_dim);
        match self.kind {
            JlMatrixKind::Gaussian => {
                // Box–Muller, two draws per pair.
                let mut pending: Option<f64> = None;
                for _ in 0..self.out_dim {
                    let z = match pending.take() {
                        Some(z) => z,
                        None => {
                            let u1: f64 = rng.random::<f64>().max(1e-300);
                            let u2: f64 = rng.random();
                            let r = (-2.0 * u1.ln()).sqrt();
                            let theta = 2.0 * std::f64::consts::PI * u2;
                            pending = Some(r * theta.sin());
                            r * theta.cos()
                        }
                    };
                    col.push(z * scale);
                }
            }
            JlMatrixKind::Rademacher => {
                for _ in 0..self.out_dim {
                    let sign = if rng.random::<bool>() { 1.0 } else { -1.0 };
                    col.push(sign * scale);
                }
            }
            JlMatrixKind::AchlioptasSparse => {
                let root3 = 3.0f64.sqrt();
                for _ in 0..self.out_dim {
                    let u: f64 = rng.random();
                    let v = if u < 1.0 / 6.0 {
                        root3
                    } else if u < 2.0 / 6.0 {
                        -root3
                    } else {
                        0.0
                    };
                    col.push(v * scale);
                }
            }
        }
        col
    }

    /// Project one dense input vector (`x.len()` = D) to `k` components.
    pub fn project_vector(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0f64; self.out_dim];
        for (j, &v) in x.iter().enumerate() {
            if v == 0.0 {
                continue;
            }
            let col = self.column(j);
            for (o, c) in out.iter_mut().zip(&col) {
                *o += v * c;
            }
        }
        out
    }

    /// Project every row of a design matrix, streaming over input columns so
    /// peak extra memory is `O(k)` beyond the output.
    pub fn project_matrix(&self, x: &DesignMatrix) -> DesignMatrix {
        let n = x.n_rows();
        let k = self.out_dim;
        let mut out = vec![0.0f64; n * k];
        for j in 0..x.n_cols() {
            let col = self.column(j);
            for r in 0..n {
                let v = x.get(r, j);
                if v == 0.0 {
                    continue;
                }
                let dst = &mut out[r * k..(r + 1) * k];
                for (o, c) in dst.iter_mut().zip(&col) {
                    *o += v * c;
                }
            }
        }
        DesignMatrix::from_raw(n, k, out)
    }

    /// The full pre-projection pipeline of Fig. 2 applied to a mixed data
    /// set: 1-hot expansion (virtual — indicator blocks are never
    /// materialized) followed by projection. Returns an all-real data set
    /// with features `jl0..jl{k−1}`.
    ///
    /// Missing inputs contribute nothing (zero block), matching
    /// [`crate::onehot::one_hot_encode`].
    pub fn project_dataset(&self, data: &Dataset) -> Dataset {
        let n = data.n_rows();
        let k = self.out_dim;
        let mut out = vec![0.0f64; n * k];
        let mut base = 0usize;
        for j in 0..data.n_features() {
            match data.column(j) {
                Column::Real(v) => {
                    let col = self.column(base);
                    for (r, &x) in v.iter().enumerate() {
                        if x.is_nan() || x == 0.0 {
                            continue;
                        }
                        let dst = &mut out[r * k..(r + 1) * k];
                        for (o, c) in dst.iter_mut().zip(&col) {
                            *o += x * c;
                        }
                    }
                    base += 1;
                }
                Column::Categorical { arity, codes } => {
                    let cols: Vec<Vec<f64>> =
                        (0..*arity as usize).map(|c| self.column(base + c)).collect();
                    for (r, &code) in codes.iter().enumerate() {
                        if code == MISSING_CODE {
                            continue;
                        }
                        let col = &cols[code as usize];
                        let dst = &mut out[r * k..(r + 1) * k];
                        for (o, c) in dst.iter_mut().zip(col) {
                            *o += c;
                        }
                    }
                    base += *arity as usize;
                }
            }
        }
        // Transpose row-major projected rows into columns.
        let columns = (0..k)
            .map(|c| Column::Real((0..n).map(|r| out[r * k + c]).collect()))
            .collect();
        let schema = Schema::new(
            (0..k)
                .map(|c| frac_dataset::Feature::real(format!("jl{c}")))
                .collect(),
        );
        Dataset::new(schema, columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::onehot::one_hot_encode;
    use frac_dataset::dataset::DatasetBuilder;

    fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    fn random_points(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..d).map(|_| rng.random::<f64>() * 2.0 - 1.0).collect())
            .collect()
    }

    #[test]
    fn columns_are_deterministic_and_distinct() {
        let t = JlTransform::new(16, JlMatrixKind::Gaussian, 42);
        assert_eq!(t.column(3), t.column(3));
        assert_ne!(t.column(3), t.column(4));
        let t2 = JlTransform::new(16, JlMatrixKind::Gaussian, 43);
        assert_ne!(t.column(3), t2.column(3));
    }

    #[test]
    fn column_entries_have_unit_variance_prescale() {
        for kind in [
            JlMatrixKind::Gaussian,
            JlMatrixKind::Rademacher,
            JlMatrixKind::AchlioptasSparse,
        ] {
            let k = 4000;
            let t = JlTransform::new(k, kind, 7);
            let col = t.column(0);
            // Entries are scaled by 1/√k, so variance should be ≈ 1/k.
            let var: f64 = col.iter().map(|x| x * x).sum::<f64>() / k as f64;
            assert!(
                (var - 1.0 / k as f64).abs() < 0.1 / k as f64,
                "{kind:?}: var·k = {}",
                var * k as f64
            );
        }
    }

    #[test]
    fn achlioptas_is_two_thirds_sparse() {
        let t = JlTransform::new(6000, JlMatrixKind::AchlioptasSparse, 1);
        let col = t.column(0);
        let zeros = col.iter().filter(|&&x| x == 0.0).count() as f64 / 6000.0;
        assert!((zeros - 2.0 / 3.0).abs() < 0.03, "zero fraction {zeros}");
    }

    #[test]
    fn distances_preserved_within_epsilon() {
        // 20 points in 300-d, k from the point-set bound at ε = 0.45 →
        // distortions should comfortably stay within ±0.45.
        let pts = random_points(20, 300, 5);
        let eps = 0.45;
        let k = crate::dims::jl_dim_point_set(pts.len(), eps);
        for kind in [JlMatrixKind::Gaussian, JlMatrixKind::AchlioptasSparse] {
            let t = JlTransform::new(k, kind, 99);
            let proj: Vec<Vec<f64>> = pts.iter().map(|p| t.project_vector(p)).collect();
            for i in 0..pts.len() {
                for j in (i + 1)..pts.len() {
                    let orig = sq_dist(&pts[i], &pts[j]);
                    let new = sq_dist(&proj[i], &proj[j]);
                    let ratio = new / orig;
                    assert!(
                        ratio > 1.0 - eps && ratio < 1.0 + eps,
                        "{kind:?}: pair ({i},{j}) distorted by {ratio}"
                    );
                }
            }
        }
    }

    #[test]
    fn project_matrix_matches_project_vector() {
        let pts = random_points(5, 40, 11);
        let flat: Vec<f64> = pts.iter().flatten().copied().collect();
        let m = DesignMatrix::from_raw(5, 40, flat);
        let t = JlTransform::new(8, JlMatrixKind::Rademacher, 3);
        let pm = t.project_matrix(&m);
        for (r, p) in pts.iter().enumerate() {
            let pv = t.project_vector(p);
            for (c, v) in pv.iter().enumerate() {
                assert!((pm.get(r, c) - v).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn project_dataset_equals_onehot_then_project() {
        let d = DatasetBuilder::new()
            .real("r1", vec![3.4, 0.0])
            .real("r2", vec![-2.0, 1.0])
            .categorical("c3", 3, vec![1, 2])
            .categorical("c4", 4, vec![2, 0])
            .build();
        let t = JlTransform::new(4, JlMatrixKind::Gaussian, 17);
        let via_dataset = t.project_dataset(&d);
        let via_matrix = t.project_matrix(&one_hot_encode(&d));
        assert_eq!(via_dataset.n_features(), 4);
        for r in 0..2 {
            for c in 0..4 {
                let a = via_dataset.column(c).as_real().unwrap()[r];
                let b = via_matrix.get(r, c);
                assert!((a - b).abs() < 1e-12, "({r},{c}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn projected_dataset_schema_is_all_real() {
        let d = DatasetBuilder::new()
            .categorical("c", 3, vec![0, 1, 2])
            .build();
        let t = JlTransform::new(5, JlMatrixKind::Gaussian, 1);
        let p = t.project_dataset(&d);
        assert_eq!(p.n_features(), 5);
        assert_eq!(p.schema().n_real(), 5);
        assert_eq!(p.schema().feature(0).name, "jl0");
        assert_eq!(p.n_rows(), 3);
    }

    #[test]
    fn missing_values_project_to_smaller_norm() {
        let full = DatasetBuilder::new()
            .real("a", vec![1.0])
            .real("b", vec![1.0])
            .build();
        let miss = DatasetBuilder::new()
            .real("a", vec![1.0])
            .real("b", vec![f64::NAN])
            .build();
        let t = JlTransform::new(64, JlMatrixKind::Gaussian, 2);
        let pf = t.project_dataset(&full);
        let pm = t.project_dataset(&miss);
        // The missing coordinate contributes nothing: the projected vector
        // equals projecting (1, 0).
        let only_a = t.column(0);
        for (c, v) in only_a.iter().enumerate() {
            assert!((pm.column(c).as_real().unwrap()[0] - v).abs() < 1e-12);
        }
        assert_ne!(
            pf.column(0).as_real().unwrap()[0],
            pm.column(0).as_real().unwrap()[0]
        );
    }

    #[test]
    fn dot_products_approximately_preserved() {
        // Kabán 2015 (paper ref. 12): JL preserves dot products too.
        let pts = random_points(10, 200, 23);
        let t = JlTransform::new(600, JlMatrixKind::Gaussian, 31);
        let proj: Vec<Vec<f64>> = pts.iter().map(|p| t.project_vector(p)).collect();
        let dot = |a: &[f64], b: &[f64]| a.iter().zip(b).map(|(x, y)| x * y).sum::<f64>();
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                let orig = dot(&pts[i], &pts[j]);
                let new = dot(&proj[i], &proj[j]);
                // Additive error scales with the norms: one standard
                // deviation is ‖x‖‖y‖/√k ≈ (200/3)/√600 ≈ 2.7, and the worst
                // of 45 pairs lands around 3σ, so bound at ≈4.5σ.
                assert!((orig - new).abs() < 12.0, "pair ({i},{j}): {orig} vs {new}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_dim_rejected() {
        JlTransform::new(0, JlMatrixKind::Gaussian, 0);
    }
}
