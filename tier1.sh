#!/usr/bin/env bash
# Tier-1 verification gate: release build, full test suite, lint-clean
# workspace. CI and pre-merge checks run exactly this script.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
# frac-core and frac-learn deny unwrap/expect in non-test code via
# crate-root cfg_attr (flags passed here would leak into dependency
# builds); this run enforces those lints.
cargo clippy -p frac-core -p frac-learn --lib
# Fault-isolation guarantee: fit + score must survive injected faults.
cargo test -q -p frac-core --test fault_injection
# Crash-safety guarantee: resume after a kill at any journal byte must be
# bitwise identical to an uninterrupted run.
cargo test -q -p frac-core --test crash_resume

# Deadline smoke: a 2s wall-clock budget on the SNP surrogate must exit 0
# within the budget plus slack, save a scored model, and print a health
# summary that accounts for every planned target.
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
./target/release/frac generate --dataset autism --out "$smoke_dir"
timeout 60 ./target/release/frac train \
  --train "$smoke_dir/autism.train.tsv" \
  --out "$smoke_dir/autism.frac" \
  --snp --deadline 2s --journal "$smoke_dir/autism.frj" \
  2> "$smoke_dir/train.log"
test -f "$smoke_dir/autism.frac"
grep -q "health: " "$smoke_dir/train.log"
