#!/usr/bin/env bash
# Tier-1 verification gate: release build, full test suite, lint-clean
# workspace. CI and pre-merge checks run exactly this script.
set -euo pipefail
cd "$(dirname "$0")"

# The bare root build only covers the facade lib; the smoke below runs
# the release binary, so build frac-cli explicitly too.
cargo build --release -p frac -p frac-cli
cargo test -q
cargo clippy --workspace -- -D warnings
# frac-core and frac-learn deny unwrap/expect in non-test code via
# crate-root cfg_attr (flags passed here would leak into dependency
# builds); this run enforces those lints.
cargo clippy -p frac-core -p frac-learn --lib
# The SIMD kernel module is the workspace's only unsafe code
# (#![deny(unsafe_op_in_unsafe_fn)] at its root); keep the crate that
# hosts it lint-clean on its own, independent of workspace-wide runs.
cargo clippy -p frac-dataset --lib -- -D warnings
# The documented surface is part of the gate: every public item has docs
# (frac-core/frac-learn deny missing_docs) and no doc link is broken.
# Library crates only — the vendored stubs are workspace members but not
# ours to lint, and the `frac` bin would collide with the facade's docs.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps \
  -p frac -p frac-dataset -p frac-learn -p frac-projection -p frac-synth \
  -p frac-core -p frac-baselines -p frac-eval
# Fault-isolation guarantee: fit + score must survive injected faults.
cargo test -q -p frac-core --test fault_injection
# Crash-safety guarantee: resume after a kill at any journal byte must be
# bitwise identical to an uninterrupted run.
cargo test -q -p frac-core --test crash_resume
# Shard-supervision guarantee: crash-looping and mid-run-killed workers
# must not lose or double-count a target, and the merged model must be
# bitwise identical to a single-process run (DESIGN.md §14).
cargo test -q -p frac-core --test shard_supervision
# Telemetry guarantee: well-nested span trees under injected faults, and
# traced runs bit-identical to untraced ones.
cargo test -q -p frac-core --test telemetry
# SIMD-tier guarantee: the fast/strict equivalence suites must also pass
# with vectorization force-disabled — the portable unrolled tier is a
# first-class execution path, not just a fallback (DESIGN.md §12).
FRAC_KERNEL_TIER=unrolled cargo test -q -p frac-dataset --test kernel_equivalence
FRAC_KERNEL_TIER=unrolled cargo test -q -p frac-learn --test solver_equivalence
FRAC_KERNEL_TIER=unrolled cargo test -q -p frac-core --test pool_equivalence
# Gram-strategy guarantee: the Gram dual loop must match the primal fast
# path (objective ≤ 1e-8 relative) under the default tier and with
# vectorization force-disabled (DESIGN.md §13).
cargo test -q -p frac-learn --test gram_equivalence
FRAC_KERNEL_TIER=unrolled cargo test -q -p frac-learn --test gram_equivalence

# Deadline smoke: a 2s wall-clock budget on the SNP surrogate must exit 0
# within the budget plus slack, save a scored model, print a health
# summary that accounts for every planned target, and write an
# inspectable telemetry trace.
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
run_smoke() {
  ./target/release/frac generate --dataset autism --out "$smoke_dir"
  timeout 60 ./target/release/frac train \
    --train "$smoke_dir/autism.train.tsv" \
    --out "$smoke_dir/autism.frac" \
    --snp --deadline 2s --journal "$smoke_dir/autism.frj" \
    --telemetry "$smoke_dir/autism.trace.tsv" \
    2> "$smoke_dir/train.log"
  test -f "$smoke_dir/autism.frac"
  grep -q "health: " "$smoke_dir/train.log"
  test -f "$smoke_dir/autism.trace.tsv"
  ./target/release/frac inspect-telemetry \
    --file "$smoke_dir/autism.trace.tsv" > "$smoke_dir/inspect.log"
  grep -q "^wall" "$smoke_dir/inspect.log"
}
run_smoke

# Shard smoke: a 2-shard run whose second worker crash-loops must still
# exit 0 — the supervisor burns the retry budget, reclaims the dead
# shard in-process, and the merged model scores.
timeout 120 ./target/release/frac train \
  --train "$smoke_dir/autism.train.tsv" \
  --out "$smoke_dir/autism-sharded.frac" \
  --snp --shards 2 --shard-fault crashloop:1 \
  --shard-retries 1 --shard-backoff 50ms --shard-heartbeat 30s \
  --journal "$smoke_dir/autism-sharded.frj" \
  2> "$smoke_dir/shard.log"
test -f "$smoke_dir/autism-sharded.frac"
grep -q "shards merged" "$smoke_dir/shard.log"
./target/release/frac score \
  --model "$smoke_dir/autism-sharded.frac" \
  --test "$smoke_dir/autism.test.tsv" \
  > "$smoke_dir/shard-score.tsv" 2> "$smoke_dir/shard-score.log"
grep -q "sharded run (2 shards)" "$smoke_dir/shard-score.log"
grep -q "^sample" "$smoke_dir/shard-score.tsv"

# The telemetry-off build must compile every probe away and still pass
# the same smoke (its trace degenerates to wall clock + solver delta).
cargo build --release -p frac-cli --features telemetry-off
rm -rf "$smoke_dir"/*
run_smoke
# Leave the default binary in place for anything run after the gate.
cargo build --release -p frac-cli
