#!/usr/bin/env bash
# Tier-1 verification gate: release build, full test suite, lint-clean
# workspace. CI and pre-merge checks run exactly this script.
set -euo pipefail
cd "$(dirname "$0")"

# The bare root build only covers the facade lib; the smoke below runs
# the release binary, so build frac-cli explicitly too.
cargo build --release -p frac -p frac-cli
cargo test -q
cargo clippy --workspace -- -D warnings
# frac-core and frac-learn deny unwrap/expect in non-test code via
# crate-root cfg_attr (flags passed here would leak into dependency
# builds); this run enforces those lints.
cargo clippy -p frac-core -p frac-learn --lib
# The workspace's only unsafe code is the SIMD kernel module
# (#![deny(unsafe_op_in_unsafe_fn)] at its root) and the serve daemon's
# signal hookup in frac-cli; keep the hosting crates lint-clean on their
# own, independent of workspace-wide runs.
cargo clippy -p frac-dataset --lib -- -D warnings
cargo clippy -p frac-cli -- -D warnings
# The documented surface is part of the gate: every public item has docs
# (frac-core/frac-learn deny missing_docs) and no doc link is broken.
# Library crates only — the vendored stubs are workspace members but not
# ours to lint, and the `frac` bin would collide with the facade's docs.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps \
  -p frac -p frac-dataset -p frac-learn -p frac-projection -p frac-synth \
  -p frac-core -p frac-baselines -p frac-eval
# Fault-isolation guarantee: fit + score must survive injected faults.
cargo test -q -p frac-core --test fault_injection
# Crash-safety guarantee: resume after a kill at any journal byte must be
# bitwise identical to an uninterrupted run.
cargo test -q -p frac-core --test crash_resume
# Shard-supervision guarantee: crash-looping and mid-run-killed workers
# must not lose or double-count a target, and the merged model must be
# bitwise identical to a single-process run (DESIGN.md §14).
cargo test -q -p frac-core --test shard_supervision
# Telemetry guarantee: well-nested span trees under injected faults, and
# traced runs bit-identical to untraced ones.
cargo test -q -p frac-core --test telemetry
# SIMD-tier guarantee: the fast/strict equivalence suites must also pass
# with vectorization force-disabled — the portable unrolled tier is a
# first-class execution path, not just a fallback (DESIGN.md §12).
FRAC_KERNEL_TIER=unrolled cargo test -q -p frac-dataset --test kernel_equivalence
FRAC_KERNEL_TIER=unrolled cargo test -q -p frac-learn --test solver_equivalence
FRAC_KERNEL_TIER=unrolled cargo test -q -p frac-core --test pool_equivalence
# Gram-strategy guarantee: the Gram dual loop must match the primal fast
# path (objective ≤ 1e-8 relative) under the default tier and with
# vectorization force-disabled (DESIGN.md §13).
cargo test -q -p frac-learn --test gram_equivalence
FRAC_KERNEL_TIER=unrolled cargo test -q -p frac-learn --test gram_equivalence
# Serving guarantee: daemon replies bit-identical to `frac score`,
# malformed lines quarantined per-record, overload shed with `busy`,
# hot reload validated off-path with rollback, drain on shutdown — plus
# wire-protocol fuzzing (byte soup, oversized lines, disconnects).
cargo test -q -p frac-core --test serve
cargo test -q -p frac-core --test serve_fuzz
# Out-of-core guarantee: FCB round trips are bit-exact and any corruption
# (truncation, bit flips, foreign bytes) is rejected without a panic
# (FORMATS.md §2); models fitted from a memory-mapped FCB file score
# bit-identically to TSV-fitted ones at any thread count.
cargo test -q -p frac-dataset --test fcb_corruption
cargo test -q -p frac-core --test fcb_equivalence

# Deadline smoke: a 2s wall-clock budget on the SNP surrogate must exit 0
# within the budget plus slack, save a scored model, print a health
# summary that accounts for every planned target, and write an
# inspectable telemetry trace.
smoke_dir="$(mktemp -d)"
# Also reaps the serve-smoke daemon if a later assertion aborts the gate.
trap '[ -z "${serve_pid:-}" ] || kill "$serve_pid" 2>/dev/null || true; rm -rf "$smoke_dir"' EXIT
run_smoke() {
  ./target/release/frac generate --dataset autism --out "$smoke_dir"
  timeout 60 ./target/release/frac train \
    --train "$smoke_dir/autism.train.tsv" \
    --out "$smoke_dir/autism.frac" \
    --snp --deadline 2s --journal "$smoke_dir/autism.frj" \
    --telemetry "$smoke_dir/autism.trace.tsv" \
    2> "$smoke_dir/train.log"
  test -f "$smoke_dir/autism.frac"
  grep -q "health: " "$smoke_dir/train.log"
  test -f "$smoke_dir/autism.trace.tsv"
  ./target/release/frac inspect-telemetry \
    --file "$smoke_dir/autism.trace.tsv" > "$smoke_dir/inspect.log"
  grep -q "^wall" "$smoke_dir/inspect.log"
}
run_smoke

# Shard smoke: a 2-shard run whose second worker crash-loops must still
# exit 0 — the supervisor burns the retry budget, reclaims the dead
# shard in-process, and the merged model scores.
timeout 120 ./target/release/frac train \
  --train "$smoke_dir/autism.train.tsv" \
  --out "$smoke_dir/autism-sharded.frac" \
  --snp --shards 2 --shard-fault crashloop:1 \
  --shard-retries 1 --shard-backoff 50ms --shard-heartbeat 30s \
  --journal "$smoke_dir/autism-sharded.frj" \
  2> "$smoke_dir/shard.log"
test -f "$smoke_dir/autism-sharded.frac"
grep -q "shards merged" "$smoke_dir/shard.log"
./target/release/frac score \
  --model "$smoke_dir/autism-sharded.frac" \
  --test "$smoke_dir/autism.test.tsv" \
  > "$smoke_dir/shard-score.tsv" 2> "$smoke_dir/shard-score.log"
grep -q "sharded run (2 shards)" "$smoke_dir/shard-score.log"
grep -q "^sample" "$smoke_dir/shard-score.tsv"

# FCB smoke: pack the surrogate to the binary column format, inspect it,
# train from the .fcb, and check the scores are byte-identical to a
# TSV-trained model's — out-of-core storage must not change a single bit.
./target/release/frac pack --data "$smoke_dir/autism.train.tsv" \
  --out "$smoke_dir/autism.train.fcb" --chunk-rows 64
./target/release/frac info --data "$smoke_dir/autism.train.fcb" \
  > "$smoke_dir/fcb-info.log"
grep -q "^format	fcb v1" "$smoke_dir/fcb-info.log"
timeout 120 ./target/release/frac train \
  --train "$smoke_dir/autism.train.fcb" \
  --out "$smoke_dir/autism-fcb.frac" --snp 2> "$smoke_dir/fcb-train.log"
timeout 120 ./target/release/frac train \
  --train "$smoke_dir/autism.train.tsv" \
  --out "$smoke_dir/autism-tsv.frac" --snp 2> /dev/null
./target/release/frac score --model "$smoke_dir/autism-fcb.frac" \
  --test "$smoke_dir/autism.test.tsv" \
  > "$smoke_dir/score-fcb.tsv" 2> /dev/null
./target/release/frac score --model "$smoke_dir/autism-tsv.frac" \
  --test "$smoke_dir/autism.test.tsv" \
  > "$smoke_dir/score-tsv.tsv" 2> /dev/null
cmp "$smoke_dir/score-fcb.tsv" "$smoke_dir/score-tsv.tsv"

# The telemetry-off build must compile every probe away and still pass
# the same smoke (its trace degenerates to wall clock + solver delta).
cargo build --release -p frac-cli --features telemetry-off
rm -rf "$smoke_dir"/*
run_smoke
# Leave the default binary in place for anything run after the gate.
cargo build --release -p frac-cli

# Serve smoke: a release daemon on a loopback socket must score a piped
# TSV record, quarantine a malformed line without dropping the
# connection, hot-reload on SIGHUP, reject a corrupt reload candidate
# and keep serving the old model, and exit 0 on SIGTERM with its
# counters accounting for both reload outcomes. Uses the model the
# telemetry-off smoke just trained (the default binary serves it).
./target/release/frac serve \
  --model "$smoke_dir/autism.frac" \
  --schema "$smoke_dir/autism.train.tsv" \
  --listen 127.0.0.1:0 --drain-timeout 5s 2> "$smoke_dir/serve.log" &
serve_pid=$!
for _ in $(seq 50); do
  grep -q "listening on" "$smoke_dir/serve.log" && break
  sleep 0.1
done
port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$smoke_dir/serve.log")
exec 3<>"/dev/tcp/127.0.0.1/$port"
# A real record scores (seq 1)…
sed -n '2p' "$smoke_dir/autism.test.tsv" >&3
read -t 10 -r reply <&3
case "$reply" in "ns 1 "*) ;; *) echo "serve smoke: bad score reply: $reply"; exit 1;; esac
# …a malformed line is quarantined (seq 2) and the connection survives
# to answer a ping (seq 3).
printf 'definitely\tnot\ta\trecord\n' >&3
read -t 10 -r reply <&3
case "$reply" in "err 2 "*) ;; *) echo "serve smoke: malformed line not quarantined: $reply"; exit 1;; esac
printf 'cmd ping\n' >&3
read -t 10 -r reply <&3
case "$reply" in "ok 3 pong") ;; *) echo "serve smoke: daemon died after quarantine: $reply"; exit 1;; esac
# SIGHUP hot reload (same path on disk is a valid candidate); the daemon
# must log the reload and keep scoring.
kill -HUP "$serve_pid"
for _ in $(seq 50); do
  grep -q "SIGHUP: reloading" "$smoke_dir/serve.log" && break
  sleep 0.1
done
grep -q "SIGHUP: reloading" "$smoke_dir/serve.log"
sleep 0.3
sed -n '2p' "$smoke_dir/autism.test.tsv" >&3
read -t 10 -r reply <&3
case "$reply" in "ns 4 "*) ;; *) echo "serve smoke: no score after SIGHUP reload: $reply"; exit 1;; esac
# A truncated candidate must be rejected off-path and rolled back; the
# serving model keeps answering.
head -c "$(( $(wc -c < "$smoke_dir/autism.frac") / 2 ))" \
  "$smoke_dir/autism.frac" > "$smoke_dir/corrupt.frac"
printf 'cmd reload %s\n' "$smoke_dir/corrupt.frac" >&3
read -t 10 -r reply <&3
case "$reply" in "err 5 reload failed"*) ;; *) echo "serve smoke: corrupt reload not rejected: $reply"; exit 1;; esac
sed -n '2p' "$smoke_dir/autism.test.tsv" >&3
read -t 10 -r reply <&3
case "$reply" in "ns 6 "*) ;; *) echo "serve smoke: daemon lost the model after rollback: $reply"; exit 1;; esac
# SIGTERM drains and exits 0; the exit summary accounts for the one
# successful reload and the one rejected candidate.
kill -TERM "$serve_pid"
wait "$serve_pid"
grep -q "reloads=1" "$smoke_dir/serve.log"
grep -q "reload_failures=1" "$smoke_dir/serve.log"
