#!/usr/bin/env bash
# Tier-1 verification gate: release build, full test suite, lint-clean
# workspace. CI and pre-merge checks run exactly this script.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
