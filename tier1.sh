#!/usr/bin/env bash
# Tier-1 verification gate: release build, full test suite, lint-clean
# workspace. CI and pre-merge checks run exactly this script.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
# frac-core and frac-learn deny unwrap/expect in non-test code via
# crate-root cfg_attr (flags passed here would leak into dependency
# builds); this run enforces those lints.
cargo clippy -p frac-core -p frac-learn --lib
# Fault-isolation guarantee: fit + score must survive injected faults.
cargo test -q -p frac-core --test fault_injection
