//! # frac — Scalable FRaC Variants
//!
//! A from-scratch Rust implementation of the FRaC (Feature Regression and
//! Classification) anomaly-detection algorithm and its scalable variants,
//! reproducing *Cousins, Pietras, Slonim — "Scalable FRaC Variants: Anomaly
//! Detection for Precision Medicine", IPPS 2017*.
//!
//! FRaC trains one supervised model per feature (predicting it from the
//! other features) and scores a test sample by its **normalized surprisal**:
//! the total information its feature values carry, conditioned on each
//! other, relative to each feature's baseline entropy. High surprisal =
//! anomaly. The variants — random/entropy filtering, Diverse FRaC,
//! ensembles, Johnson–Lindenstrauss pre-projection — preserve detection
//! accuracy at a small fraction of the computation and memory.
//!
//! This crate is a facade re-exporting the workspace:
//!
//! * [`dataset`] — mixed real/categorical data sets, entropy, splits, I/O
//! * [`learn`] — linear SVR/SVC (dual coordinate descent), decision trees,
//!   error models, cross-validation
//! * [`projection`] — one-hot encoding and JL random projections
//! * [`synth`] — synthetic surrogates for the paper's 8 data sets
//! * [`core`] — FRaC itself plus all variants
//! * [`baselines`] — the competing detectors the FRaC papers compare
//!   against (LOF, one-class SVM, k-NN distance)
//! * [`eval`] — AUC, the replicate protocol, experiment rosters
//!
//! ## Quickstart
//!
//! ```
//! use frac::core::{run_variant, FracConfig, Variant};
//! use frac::eval::auc_from_scores;
//! use frac::synth::{ExpressionConfig, ExpressionGenerator};
//!
//! // A small synthetic expression study: 20 genes, anomalies dysregulate
//! // two modules.
//! let generator = ExpressionGenerator::new(ExpressionConfig {
//!     n_features: 20,
//!     n_modules: 4,
//!     anomaly_modules: 2,
//!     anomaly_shift: 3.0,
//!     noise_sd: 0.5,
//!     relevant_fraction: 0.9,
//!     ..ExpressionConfig::default()
//! });
//! let (data, labels) = generator.generate(24, 6, 7);
//!
//! // Train on the first 18 (normal) samples, test on the rest.
//! let train = data.select_rows(&(0..18).collect::<Vec<_>>());
//! let test = data.select_rows(&(18..30).collect::<Vec<_>>());
//! let test_labels = &labels[18..30];
//!
//! let outcome = run_variant(&train, &test, &Variant::Full, &FracConfig::default());
//! let auc = auc_from_scores(&outcome.ns, test_labels);
//! assert!(auc > 0.5, "anomalies should rank above normals (AUC = {auc})");
//! ```
//!
//! See `examples/` for realistic end-to-end scenarios and `crates/bench`
//! for the binaries regenerating every table and figure of the paper.

pub use frac_baselines as baselines;
pub use frac_core as core;
pub use frac_dataset as dataset;
pub use frac_eval as eval;
pub use frac_learn as learn;
pub use frac_projection as projection;
pub use frac_synth as synth;
