//! Offline, API-compatible subset of `criterion`.
//!
//! The build container has no registry access, so the workspace vendors the
//! slice of criterion its benches use: `Criterion::benchmark_group`,
//! `sample_size`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros.
//! Statistical analysis is replaced by a plain mean/min report over the
//! configured sample count — good enough to eyeball regressions offline;
//! `--quick`-style accuracy claims are out of scope.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Measurement harness handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    /// Mean and minimum wall time per iteration, filled by `iter`.
    result: Option<(Duration, Duration)>,
}

impl Bencher {
    /// Time `f`, running one warm-up call plus `samples` timed calls.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        std::hint::black_box(f());
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(f());
            let dt = start.elapsed();
            total += dt;
            min = min.min(dt);
        }
        self.result = Some((total / self.samples as u32, min));
    }
}

/// Benchmark identifier: a name, optionally parameterized.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Anything accepted where criterion takes a benchmark name.
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn run_one(group: Option<&str>, id: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { samples: samples.max(1), result: None };
    f(&mut b);
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    match b.result {
        Some((mean, min)) => {
            println!("bench {label:<50} mean {:>12}  min {:>12}", fmt_duration(mean), fmt_duration(min));
        }
        None => println!("bench {label:<50} (no measurement)"),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per benchmark (criterion's sample count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(Some(&self.name), &id.into_id(), self.samples, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(Some(&self.name), &id.into_id(), self.samples, &mut |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = self.samples;
        BenchmarkGroup { name: name.into(), samples, _criterion: self }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(None, &id.into_id(), self.samples, &mut f);
        self
    }
}

/// Bundles benchmark functions into one runner fn named `$name`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point: runs each group unless invoked with `--test` (cargo test
/// runs bench targets in test mode; measuring there would be noise).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        group.finish();
        // warm-up + 3 samples
        assert_eq!(runs, 4);
    }
}
