//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build container has no registry access, so the workspace vendors the
//! slice of `rand` 0.10 it actually uses: a deterministic seeded generator
//! (`rngs::StdRng`, xoshiro256++ seeded via SplitMix64), the `Rng` extension
//! methods `random`/`random_range`, `SeedableRng::seed_from_u64`, and
//! `SliceRandom::shuffle`. Determinism (same seed → same stream, forever) is
//! the only contract the workspace relies on; matching upstream `rand`'s
//! exact stream is explicitly *not* required, since every consumer seeds its
//! own `StdRng` and all golden values in tests were produced by this
//! implementation.

/// Core trait: a source of uniformly distributed `u64` words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from an RNG (the `Standard`
/// distribution in upstream `rand`).
pub trait StandardSample: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Use the high bit: xoshiro's low bits are the weakest.
        (rng.next_u64() >> 63) != 0
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Integer types usable with [`Rng::random_range`].
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Unbiased integer in `0..n` by rejection sampling (n > 0).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    // Largest multiple of n that fits in u64: values at or above it would
    // bias the modulus, so reject and redraw.
    let zone = u64::MAX - (u64::MAX % n);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % n;
        }
    }
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as u64) - (lo as u64);
                lo + uniform_u64(rng, span) as $t
            }
        }
    )*};
}
impl_sample_uniform_uint!(usize, u64, u32, u16, u8);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(i64, i32, i16, i8, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        lo + (hi - lo) * f64::sample(rng)
    }
}

/// Ranges accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl SampleRange<usize> for core::ops::RangeInclusive<usize> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + uniform_u64(rng, (hi - lo) as u64 + 1) as usize
    }
}

/// Extension methods over any [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the standard distribution.
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (mirrors `rand::SeedableRng` for the used subset).
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (stream is a pure function of the seed).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256++ with state
    /// expanded from the `u64` seed by SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna, public domain reference).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{RngCore, SampleUniform};

    /// Slice shuffling (mirrors `rand::seq::SliceRandom::shuffle`).
    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates, high-to-low, matching upstream's element order.
            for i in (1..self.len()).rev() {
                let j = usize::sample_range(rng, 0, i + 1);
                self.swap(i, j);
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

pub use prelude::{Rng as _, RngCore as _};

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn range_bounds_and_coverage() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[r.random_range(0..7usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut r = StdRng::seed_from_u64(4);
        let heads = (0..10_000).filter(|_| r.random::<bool>()).count();
        assert!((heads as f64 / 10_000.0 - 0.5).abs() < 0.02);
    }
}
