//! Offline, API-compatible subset of `proptest`.
//!
//! The build container has no registry access, so the workspace vendors the
//! slice of proptest its property tests use: the [`strategy::Strategy`]
//! trait with `prop_map`/`prop_flat_map`/`boxed`, range/tuple/`Just`/
//! weighted-union strategies, `prop::collection::vec`, `any::<T>()`, the
//! `proptest!` test macro, and the `prop_assert!`/`prop_assert_eq!`/
//! `prop_assert_ne!`/`prop_assume!` family.
//!
//! Differences from upstream, deliberately accepted: cases are sampled
//! uniformly (no size ramp-up) and failing inputs are **not shrunk** — the
//! failure message reports the assertion only. Case streams are
//! deterministic per test (seeded from the test's module path and name), so
//! failures reproduce across runs.

pub mod test_runner {
    /// Run-time configuration (`cases` is the only knob the workspace uses).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Outcome of a single generated case.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed — skip this input, draw another.
        Reject,
        /// An assertion failed; the test panics with this message.
        Fail(String),
    }

    /// Deterministic per-test RNG (SplitMix64 seeded from the test name).
    #[derive(Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test's fully qualified name (FNV-1a hash).
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Unbiased uniform in `0..n` (n > 0) by rejection.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            let zone = u64::MAX - (u64::MAX % n);
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % n;
                }
            }
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;

    /// A generator of values for property tests. Unlike upstream proptest
    /// there is no value tree / shrinking — `generate` draws one value.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.generate(rng)))
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Type-erased strategy (result of [`Strategy::boxed`]).
    pub struct BoxedStrategy<V>(Box<dyn Fn(&mut TestRng) -> V>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (self.0)(rng)
        }
    }

    /// Weighted choice between boxed strategies (built by `prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
    }

    impl<V> Union<V> {
        /// # Panics
        /// Panics if `arms` is empty or all weights are zero.
        pub fn weighted(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs at least one positive weight");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
            let mut pick = rng.below(total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights changed during generation")
        }
    }

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    macro_rules! impl_uint_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.below((self.end - self.start) as u64) as $t
                }
            }
        )*};
    }
    impl_uint_range_strategy!(usize, u64, u32, u16, u8);

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    impl_int_range_strategy!(i64, i32, i16, i8, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Length specifications accepted by [`vec`]: an exact `usize` or a
    /// half-open `Range<usize>`.
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec length range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// `prop::collection::vec(element, len)`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait ArbitraryValue {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            (rng.next_u64() >> 63) != 0
        }
    }

    impl ArbitraryValue for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl ArbitraryValue for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            (rng.next_u64() >> 32) as u32
        }
    }

    impl ArbitraryValue for i64 {
        fn arbitrary(rng: &mut TestRng) -> i64 {
            rng.next_u64() as i64
        }
    }

    impl ArbitraryValue for i32 {
        fn arbitrary(rng: &mut TestRng) -> i32 {
            (rng.next_u64() >> 32) as i32
        }
    }

    impl ArbitraryValue for usize {
        fn arbitrary(rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }

    pub struct Any<T>(PhantomData<T>);

    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Defines deterministic property tests. Supports an optional leading
/// `#![proptest_config(...)]` and `pat in strategy` argument lists.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut __accepted: u32 = 0;
                let mut __attempts: u64 = 0;
                while __accepted < __config.cases {
                    __attempts += 1;
                    assert!(
                        __attempts <= (__config.cases as u64) * 20 + 1000,
                        "proptest: too many rejected cases in {}",
                        stringify!($name),
                    );
                    $(
                        let $pat =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )*
                    let __outcome = (move
                        || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        let _: () = $body;
                        ::core::result::Result::Ok(())
                    })();
                    match __outcome {
                        ::core::result::Result::Ok(()) => __accepted += 1,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject,
                        ) => {}
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(__msg),
                        ) => {
                            panic!(
                                "proptest case failed in {} (case {}): {}",
                                stringify!($name),
                                __accepted,
                                __msg,
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(format!(
                            "assertion failed: `(left == right)`\n  left: {:?}\n right: {:?}",
                            __l, __r,
                        )),
                    );
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
                    );
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(format!(
                            "assertion failed: `(left != right)`\n  both: {:?}",
                            __l,
                        )),
                    );
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

    /// Mirrors upstream's `prop::` namespace (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in -5.0f64..5.0, n in 1usize..10, c in 0u32..3) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
            prop_assert!(c < 3);
        }

        #[test]
        fn vec_and_oneof_compose(
            v in prop::collection::vec(prop_oneof![2 => Just(1u32), 1 => 5u32..8], 1..20),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&x| x == 1 || (5..8).contains(&x)));
        }

        #[test]
        fn flat_map_threads_intermediate(
            (n, v) in (1usize..6).prop_flat_map(|n| {
                prop::collection::vec(0u32..10, n).prop_map(move |v| (n, v))
            }),
        ) {
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn assume_rejects(a in 0u32..10, b in 0u32..10) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::for_test("x::y");
        let mut b = crate::test_runner::TestRng::for_test("x::y");
        assert_eq!(
            (0..16).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..16).map(|_| b.next_u64()).collect::<Vec<_>>(),
        );
    }
}
