//! Offline, API-compatible subset of `rayon`.
//!
//! The build container has no registry access, so the workspace vendors the
//! slice of rayon it uses: `slice.par_iter().map(f).collect::<Vec<_>>()`
//! plus `ThreadPoolBuilder::num_threads(n).build().install(f)` to pin the
//! degree of parallelism in tests. Work is executed on scoped OS threads in
//! contiguous chunks and results are returned **in input order**, so callers
//! observe exactly the same output as sequential iteration — parallelism
//! here changes wall-clock only, never results.

use std::cell::Cell;
use std::marker::PhantomData;

thread_local! {
    /// Per-thread override installed by [`ThreadPool::install`]; 0 = default.
    static NUM_THREADS_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// Number of worker threads a parallel iterator on this thread will use.
pub fn current_num_threads() -> usize {
    let forced = NUM_THREADS_OVERRIDE.with(|c| c.get());
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Order-preserving parallel map over a slice using scoped threads.
fn par_map_collect<'a, T, R, F>(items: &'a [T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let n_threads = current_num_threads().min(items.len().max(1));
    if n_threads <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(n_threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| {
                let f = &f;
                scope.spawn(move || c.iter().map(f).collect::<Vec<R>>())
            })
            .collect();
        let mut out = Vec::with_capacity(items.len());
        for h in handles {
            out.extend(h.join().expect("rayon stub worker panicked"));
        }
        out
    })
}

/// Borrowed parallel iterator over a slice (the result of `par_iter`).
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap { items: self.items, f, _marker: PhantomData }
    }
}

/// A mapped parallel iterator; `collect` runs the fan-out.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
    _marker: PhantomData<&'a T>,
}

impl<'a, T, F, R> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        C::from(par_map_collect(self.items, self.f))
    }
}

/// Mirrors `rayon::iter::IntoParallelRefIterator` for slice-backed types.
pub trait IntoParallelRefIterator<'a> {
    type Item: Sync + 'a;
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Error type for [`ThreadPoolBuilder::build`] (construction never fails
/// here, the type exists for signature compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Mirrors `rayon::ThreadPoolBuilder` for the subset used in tests.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { num_threads: self.num_threads })
    }
}

/// A "pool" that scopes a thread-count override; workers are spawned per
/// parallel call rather than kept resident.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's thread count governing any parallel
    /// iterators it executes (on this thread).
    pub fn install<R, F: FnOnce() -> R>(&self, f: F) -> R {
        let prev = NUM_THREADS_OVERRIDE.with(|c| c.replace(self.num_threads));
        let result = f();
        NUM_THREADS_OVERRIDE.with(|c| c.set(prev));
        result
    }

    pub fn current_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}

pub mod prelude {
    pub use super::{IntoParallelRefIterator, ParIter, ParMap};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::ThreadPoolBuilder;

    #[test]
    fn map_collect_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = items.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn install_pins_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let out: Vec<usize> = pool.install(|| {
            assert_eq!(super::current_num_threads(), 1);
            let items: Vec<usize> = (0..10).collect();
            items.par_iter().map(|&x| x + 1).collect()
        });
        assert_eq!(out, (1..11).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u8> = vec![];
        let out: Vec<u8> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [7u8];
        let out: Vec<u8> = one.par_iter().map(|&x| x).collect();
        assert_eq!(out, vec![7]);
    }
}
