//! SNP cohort analysis on the schizophrenia surrogate, reproducing the
//! paper's §IV interpretation workflow:
//!
//! 1. Entropy filtering reaches near-perfect AUC — but by detecting
//!    *ancestry*, not disease: the kept features are overwhelmingly the
//!    designated ancestry-informative markers (the paper's "allele
//!    frequencies that differ substantially across HapMap populations").
//! 2. The random-filter ensemble scores lower, but the SNP models most
//!    responsible for the *cases'* surprisal (case-vs-control contribution
//!    difference) are enriched for true disease loci, checked with the same
//!    hypergeometric tail test the paper uses for PLXNA2/GRIN2B
//!    (p = 0.011 there).
//!
//! ```text
//! cargo run --release --example snp_cohort
//! ```

use frac::core::{run_variant, FeatureSelector, Variant};
use frac::eval::auc_from_scores;
use frac::eval::experiments::config_for;
use frac::synth::registry::{make_fixed_split, spec, SpecKind};
use frac::synth::snp::SnpGenerator;
use std::collections::HashSet;

/// Hypergeometric tail P(X ≥ k) of drawing `k` of `m` marked items in `n`
/// draws from a population of `total` (the paper's enrichment test).
fn hypergeometric_tail(total: u64, marked: u64, draws: u64, k: u64) -> f64 {
    let ln_choose = |n: u64, r: u64| -> f64 {
        if r > n {
            return f64::NEG_INFINITY;
        }
        let mut acc = 0.0;
        for i in 0..r {
            acc += ((n - i) as f64).ln() - ((r - i) as f64).ln();
        }
        acc
    };
    let denom = ln_choose(total, draws);
    (k..=draws.min(marked))
        .map(|x| (ln_choose(marked, x) + ln_choose(total - marked, draws - x) - denom).exp())
        .sum()
}

fn main() {
    let s = spec("schizophrenia");
    let (train, test) = make_fixed_split(s.default_seed);
    let cfg = config_for(&s);
    let generator = match &s.kind {
        SpecKind::Snp(c) => SnpGenerator::new(c.clone()),
        _ => unreachable!("schizophrenia is a SNP surrogate"),
    };

    println!(
        "schizophrenia surrogate: {} SNPs; train = {} HapMap-style normals;\n\
         test = {} normals + {} cases from a different ancestry mix\n",
        train.n_features(),
        train.n_rows(),
        test.n_normal(),
        test.n_anomaly()
    );

    // ---- 1. entropy filtering: the ancestry shortcut ----
    let entropy = run_variant(
        &train,
        &test.data,
        &Variant::FullFilter { selector: FeatureSelector::Entropy, p: 0.05 },
        &cfg,
    );
    let auc_e = auc_from_scores(&entropy.ns, &test.labels);
    let kept: HashSet<usize> = entropy.selected_features.clone().unwrap().into_iter().collect();
    let aims: HashSet<usize> = generator.aims().iter().copied().collect();
    let kept_aims = kept.intersection(&aims).count();
    println!("entropy filtering (p=.05): AUC = {auc_e:.3}");
    println!(
        "  kept {} SNPs, of which {} are ancestry-informative markers \
         ({} AIMs exist among {} SNPs)",
        kept.len(),
        kept_aims,
        aims.len(),
        train.n_features()
    );
    println!(
        "  → the near-perfect AUC is ancestry detection, not disease biology \
         (the paper's caveat).\n"
    );

    // ---- 2. random-filter ensemble: slower but honest ----
    let ensemble = run_variant(
        &train,
        &test.data,
        &Variant::Ensemble {
            base: Box::new(Variant::FullFilter { selector: FeatureSelector::Random, p: 0.05 }),
            members: 10,
        },
        &cfg,
    );
    let auc_r = auc_from_scores(&ensemble.ns, &test.labels);
    println!("random-filter ensemble (10 × p=.05): AUC = {auc_r:.3}");

    // The paper found two disease-adjacent SNPs among the top predictive
    // models of its random run. Our analogous question: which SNP models
    // drive the *cases'* surprisal specifically? Rank modeled SNPs by mean
    // NS contribution in cases minus controls, then test the top 20 for
    // disease-locus enrichment with the paper's hypergeometric tail.
    let n_cases = test.labels.iter().filter(|&&l| l).count() as f64;
    let n_ctrl = test.labels.len() as f64 - n_cases;
    let mut differential: Vec<(usize, f64)> = ensemble
        .contributions
        .feature_ids
        .iter()
        .zip(&ensemble.contributions.values)
        .map(|(&f, col)| {
            let (mut case_sum, mut ctrl_sum) = (0.0f64, 0.0f64);
            for (v, &is_case) in col.iter().zip(&test.labels) {
                if is_case {
                    case_sum += v;
                } else {
                    ctrl_sum += v;
                }
            }
            (f, case_sum / n_cases - ctrl_sum / n_ctrl)
        })
        .collect();
    differential.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    let top20: Vec<usize> = differential.iter().take(20).map(|&(f, _)| f).collect();
    let disease: HashSet<usize> = generator.disease_loci().iter().copied().collect();
    let hits = top20.iter().filter(|f| disease.contains(f)).count();
    let pool = differential.len() as u64;
    let marked = differential
        .iter()
        .filter(|(f, _)| disease.contains(f))
        .count() as u64;
    let p = hypergeometric_tail(pool, marked, 20, hits as u64);
    println!(
        "  top-20 case-differential SNP models contain {hits} of the {} disease loci \
         present among the {} modeled SNPs",
        marked, pool
    );
    println!("  hypergeometric P(X ≥ {hits}) = {p:.4} (paper's analogous test: 0.011)");
    if hits > 0 {
        println!("  → like PLXNA2/GRIN2B in the paper, real disease loci surface among");
        println!("    the models most responsible for the cases' surprisal, even though");
        println!("    ancestry dominates the overall score.");
    }
}
