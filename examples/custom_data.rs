//! Using FRaC on your own data: write/read the TSV interchange format,
//! train on a reference cohort, and score new samples — the workflow a
//! clinical user would follow with real expression or genotyping exports.
//!
//! ```text
//! cargo run --release --example custom_data
//! ```

use frac::core::{run_variant, FracConfig, Variant};
use frac::dataset::io::{read_tsv, write_tsv};
use frac::synth::rng::Sampler;
use frac::synth::snp::{CohortGroup, SnpConfig, SnpGenerator, SubpopulationMix};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("frac-custom-data");
    std::fs::create_dir_all(&dir)?;
    let reference_path = dir.join("reference_cohort.tsv");
    let patients_path = dir.join("new_patients.tsv");

    // ---- pretend these files came from your genotyping pipeline ----
    // (60 SNPs with LD structure; two of the five "new patients" carry a
    // systematically perturbed genotype pattern.)
    let generator = SnpGenerator::new(SnpConfig {
        n_snps: 60,
        ld_block_size: 6,
        ld_rho: 0.7,
        n_subpops: 1,
        fst: 0.0,
        structure_seed: 99,
        ..SnpConfig::default()
    });
    let mix = SubpopulationMix::single(0, 1);
    let (reference, _) = generator.generate(
        &[CohortGroup { n: 80, mix: mix.clone(), is_case: false }],
        1,
    );
    let (mut patients, _) =
        generator.generate(&[CohortGroup { n: 5, mix, is_case: false }], 2);
    // Corrupt patients 3 and 4: scramble their genotypes so the LD
    // relationships the reference cohort exhibits are violated.
    {
        use frac::dataset::{Dataset, Value};
        let mut s = Sampler::seed_from_u64(7);
        let mut rows: Vec<Vec<Value>> = (0..patients.n_rows()).map(|r| patients.row(r)).collect();
        for row in rows.iter_mut().skip(3) {
            for v in row.iter_mut() {
                if s.bernoulli(0.6) {
                    *v = Value::Categorical(s.index(3) as u32);
                }
            }
        }
        let mut rebuilt = Dataset::empty(patients.schema().clone());
        for row in &rows {
            rebuilt.push_row(row);
        }
        patients = rebuilt;
    }
    write_tsv(&reference, &reference_path)?;
    write_tsv(&patients, &patients_path)?;
    println!("wrote {} and {}", reference_path.display(), patients_path.display());

    // ---- the user-facing workflow: load, train, score ----
    let train = read_tsv(&reference_path)?;
    let incoming = read_tsv(&patients_path)?;
    println!(
        "reference cohort: {} samples × {} SNPs; scoring {} new patients",
        train.n_rows(),
        train.n_features(),
        incoming.n_rows()
    );

    let outcome = run_variant(&train, &incoming, &Variant::Full, &FracConfig::snp());

    println!("\npatient  NS score   assessment");
    let mean: f64 = outcome.ns.iter().sum::<f64>() / outcome.ns.len() as f64;
    for (i, ns) in outcome.ns.iter().enumerate() {
        let flag = if *ns > mean + 1.0 { "⚠ anomalous genotype pattern" } else { "consistent with reference" };
        println!("{i:>7}  {ns:>8.2}   {flag}");
    }
    println!(
        "\n(patients 3 and 4 were synthetically scrambled; their NS scores should\n\
         stand far above the others)"
    );
    Ok(())
}
