//! Expression screening: compare full FRaC against the scalable variants on
//! the breast.basal surrogate, then characterize the most anomalous sample
//! by its top-contributing genes — the per-sample interpretability that
//! motivates preferring random-filter ensembles over JL pre-projection
//! (paper §IV: "for the best interpretability, one should use the random
//! filter ensembles method").
//!
//! ```text
//! cargo run --release --example expression_screen
//! ```

use frac::core::{run_variant, FeatureSelector, Variant};
use frac::eval::auc_from_scores;
use frac::eval::experiments::{config_for, jl_dim_for};
use frac::projection::JlMatrixKind;
use frac::synth::registry::{make_dataset, spec};

fn main() {
    let spec = spec("breast.basal");
    let ld = make_dataset("breast.basal", spec.default_seed);
    let cfg = config_for(&spec);

    // One paper-protocol replicate: train on ⅔ of normals.
    let normals = ld.normal_indices();
    let n_train = normals.len() * 2 / 3;
    let train_rows = &normals[..n_train];
    let mut test_rows: Vec<usize> = normals[n_train..].to_vec();
    test_rows.extend(ld.anomaly_indices());
    let train = ld.data.select_rows(train_rows);
    let test = ld.data.select_rows(&test_rows);
    let labels: Vec<bool> = test_rows.iter().map(|&r| ld.labels[r]).collect();

    let variants: Vec<(&str, Variant)> = vec![
        ("full FRaC", Variant::Full),
        (
            "random-filter ensemble (10 × p=.05)",
            Variant::Ensemble {
                base: Box::new(Variant::FullFilter {
                    selector: FeatureSelector::Random,
                    p: 0.05,
                }),
                members: 10,
            },
        ),
        (
            "JL pre-projection",
            Variant::JlProject {
                dim: jl_dim_for(&spec, 1024),
                kind: JlMatrixKind::Gaussian,
            },
        ),
    ];

    println!(
        "breast.basal surrogate: {} genes, {} train / {} test samples\n",
        ld.data.n_features(),
        train.n_rows(),
        test.n_rows()
    );
    println!("{:<38} {:>6} {:>12} {:>10}", "method", "AUC", "Gflop", "peak MiB");
    let mut ensemble_outcome = None;
    for (name, variant) in variants {
        let out = run_variant(&train, &test, &variant, &cfg);
        let auc = auc_from_scores(&out.ns, &labels);
        println!(
            "{:<38} {:>6.3} {:>12.3} {:>10.2}",
            name,
            auc,
            out.resources.flops as f64 / 1e9,
            out.resources.peak_bytes() as f64 / (1024.0 * 1024.0)
        );
        if name.starts_with("random-filter") {
            ensemble_outcome = Some(out);
        }
    }

    // ---- interpretability: why is the top sample anomalous? ----
    let out = ensemble_outcome.expect("ensemble ran");
    let top_sample = (0..test.n_rows())
        .max_by(|&a, &b| out.ns[a].partial_cmp(&out.ns[b]).unwrap())
        .unwrap();
    println!(
        "\nmost anomalous test sample: #{top_sample} (NS = {:.2}, truth = {})",
        out.ns[top_sample],
        if labels[top_sample] { "ANOMALY" } else { "normal" }
    );
    let mut gene_contribs: Vec<(usize, f64)> = out
        .contributions
        .feature_ids
        .iter()
        .zip(&out.contributions.values)
        .map(|(&g, col)| (g, col[top_sample]))
        .collect();
    gene_contribs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("top 10 contributing genes (surprisal − entropy):");
    for (g, c) in gene_contribs.iter().take(10) {
        println!("  {:<10} {c:>7.2}", ld.data.schema().feature(*g).name);
    }
}
