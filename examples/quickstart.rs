//! Quickstart: detect anomalous samples in a small synthetic expression
//! study with full FRaC.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use frac::core::{run_variant, FracConfig, Variant};
use frac::eval::auc_from_scores;
use frac::synth::{ExpressionConfig, ExpressionGenerator};

fn main() {
    // A toy "study": 40 genes in 6 co-regulated modules; anomalous samples
    // dysregulate genes in two of the modules.
    let generator = ExpressionGenerator::new(ExpressionConfig {
        n_features: 40,
        n_modules: 6,
        relevant_fraction: 0.8,
        anomaly_modules: 2,
        anomaly_shift: 3.0,
        noise_sd: 0.7,
        structure_seed: 2024,
        ..ExpressionConfig::default()
    });
    let (data, labels) = generator.generate(40, 10, 7);

    // FRaC is semi-supervised: train only on known-normal samples.
    let train_rows: Vec<usize> = (0..30).collect();
    let test_rows: Vec<usize> = (30..50).collect();
    let train = data.select_rows(&train_rows);
    let test = data.select_rows(&test_rows);
    let test_labels: Vec<bool> = test_rows.iter().map(|&r| labels[r]).collect();

    println!(
        "training on {} normal samples × {} genes; scoring {} test samples…",
        train.n_rows(),
        train.n_features(),
        test.n_rows()
    );
    let outcome = run_variant(&train, &test, &Variant::Full, &FracConfig::default());

    // Rank test samples by normalized surprisal: anomalies should float to
    // the top.
    let mut ranked: Vec<(usize, f64, bool)> = outcome
        .ns
        .iter()
        .zip(&test_labels)
        .enumerate()
        .map(|(i, (&ns, &label))| (i, ns, label))
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());

    println!("\nrank  sample  NS score  truth");
    for (rank, (i, ns, label)) in ranked.iter().enumerate() {
        println!(
            "{:>4}  {:>6}  {:>8.2}  {}",
            rank + 1,
            i,
            ns,
            if *label { "ANOMALY" } else { "normal" }
        );
    }

    let auc = auc_from_scores(&outcome.ns, &test_labels);
    println!("\nAUC = {auc:.3}");
    println!(
        "resources: {} models trained, {:.2} Gflop, peak ≈ {:.1} MiB, {:?} wall",
        outcome.resources.models_trained,
        outcome.resources.flops as f64 / 1e9,
        outcome.resources.peak_bytes() as f64 / (1024.0 * 1024.0),
        outcome.resources.wall
    );
}
