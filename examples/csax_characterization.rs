//! CSAX-style anomaly characterization: not just *which* samples are
//! anomalous, but *which molecular functions* are dysregulated in each —
//! "it is not enough to determine that a sample is anomalous; we also want
//! to derive a molecular characterization" (paper §I).
//!
//! CSAX bootstraps FRaC runs, so its cost multiplies FRaC's — this example
//! therefore drives it with the paper's scalable random-filter-ensemble
//! variant, and checks the recovered gene sets against the generator's
//! ground truth (the truly dysregulated modules).
//!
//! ```text
//! cargo run --release --example csax_characterization
//! ```

use frac::core::csax::{characterize, CsaxConfig, GeneSet};
use frac::core::{FeatureSelector, FracConfig, Variant};
use frac::synth::{ExpressionConfig, ExpressionGenerator};

fn main() {
    let generator = ExpressionGenerator::new(ExpressionConfig {
        n_features: 80,
        n_modules: 8,
        relevant_fraction: 0.9,
        anomaly_modules: 2,
        anomaly_shift: 3.0,
        noise_sd: 0.6,
        structure_seed: 314,
        ..ExpressionConfig::default()
    });
    let (data, labels) = generator.generate(40, 6, 9);
    let train = data.select_rows(&(0..30).collect::<Vec<_>>());
    let test_rows: Vec<usize> = (30..46).collect();
    let test = data.select_rows(&test_rows);

    // Module membership plays the role of pathway annotations.
    let gene_sets: Vec<GeneSet> = generator
        .module_gene_sets()
        .into_iter()
        .enumerate()
        .map(|(m, genes)| GeneSet::new(format!("module{m}"), genes))
        .collect();
    let truth: Vec<usize> = generator.dysregulated_modules();
    println!(
        "study: 80 genes in 8 modules; ground-truth dysregulated modules: {truth:?}\n"
    );

    let config = CsaxConfig {
        bootstraps: 8,
        variant: Variant::Ensemble {
            base: Box::new(Variant::FullFilter {
                selector: FeatureSelector::Random,
                p: 0.3,
            }),
            members: 5,
        },
        frac: FracConfig::default(),
        weight_exponent: 1.0,
    };
    let reports = characterize(&train, &test, &gene_sets, &config);

    // Rank samples by CSAX anomaly score and show each anomaly's top sets.
    let mut order: Vec<usize> = (0..reports.len()).collect();
    order.sort_by(|&a, &b| {
        reports[b].anomaly_score.partial_cmp(&reports[a].anomaly_score).unwrap()
    });

    let mut recovered = 0usize;
    let mut anomalies_seen = 0usize;
    for &r in &order {
        let rep = &reports[r];
        let is_anomaly = labels[test_rows[rep.sample]];
        println!(
            "sample {:>2}  score {:>7.2}  truth: {}",
            rep.sample,
            rep.anomaly_score,
            if is_anomaly { "ANOMALY" } else { "normal" }
        );
        if is_anomaly {
            anomalies_seen += 1;
            print!("            top sets:");
            for se in rep.enriched_sets.iter().take(2) {
                print!(
                    " {} (ES {:.2}, support {:.0}%)",
                    gene_sets[se.set].name,
                    se.median_es,
                    se.support * 100.0
                );
                if truth.contains(&se.set) {
                    recovered += 1;
                }
            }
            println!();
        }
    }
    println!(
        "\nground-truth dysregulated modules recovered in anomalies' top-2 sets: \
         {recovered}/{}",
        anomalies_seen * truth.len().min(2)
    );
}
